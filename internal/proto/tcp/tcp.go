// Package tcp implements the Transmission Control Protocol on the CAB as
// the paper describes (§4.2): the implementation "runs almost entirely in
// system threads, rather than at interrupt time", protecting shared state
// with mutual exclusion locks instead of disabled interrupts. A TCP input
// thread blocks on Begin_Get on the TCP input mailbox, checksums the
// entire packet in software (the cost that separates TCP from RMP in
// Figure 7), performs standard input processing, and passes data to the
// user by deleting the headers in place and Enqueueing the packet into the
// user's receive mailbox. Senders place requests in the TCP send-request
// mailbox — the data staying in mailbox buffers until acknowledged, so
// retransmission needs no copies — or, for CAB-resident senders, call the
// output path directly.
//
// The protocol machine is a faithful-but-compact 1990-era TCP: three-way
// handshake, cumulative acknowledgments, a receiver-advertised sliding
// window, go-back-N retransmission on a fixed timer, and orderly FIN
// teardown. Omissions relative to a modern stack are documented in
// DESIGN.md: no congestion control (the paper's dedicated low-loss fiber
// network predates its relevance here), no SACK, no header options (fixed
// MSS), delayed ACKs off, out-of-order segments dropped rather than
// queued.
package tcp

import (
	"fmt"

	"nectar/internal/obs"
	"nectar/internal/proto/ip"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// Protocol constants.
const (
	// DefaultWindow is the receive window each side advertises — two
	// segments of buffering, so the window throttles only a receiver
	// whose application has genuinely stopped reading; normal flow
	// control comes from the ack-gated sender below.
	DefaultWindow = 16384
	// MSS is the fixed maximum segment size (no options, so it is
	// configured rather than negotiated): Nectar's large MTU lets a full
	// 8 KB experiment message travel as one segment.
	MSS = 8192
	// RTO is the fixed retransmission timeout.
	RTO = 50 * sim.Millisecond
	// ConnectTimeout bounds the three-way handshake.
	ConnectTimeout = 2 * sim.Second
	// TimeWait is the 2*MSL linger (scaled to the LAN's tiny RTTs).
	TimeWait = 100 * sim.Millisecond
	// ephemeralBase is the first ephemeral local port.
	ephemeralBase = 40000
)

// State is a TCP connection state.
type State int

// Connection states.
const (
	Closed State = iota
	Listen
	SynSent
	SynRcvd
	Established
	FinWait1
	FinWait2
	CloseWait
	LastAck
	Closing
	TimeWaitState
)

var stateNames = [...]string{"Closed", "Listen", "SynSent", "SynRcvd",
	"Established", "FinWait1", "FinWait2", "CloseWait", "LastAck", "Closing", "TimeWait"}

func (s State) String() string { return stateNames[s] }

// Sequence-space comparisons (mod 2^32).
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

type connKey struct {
	lport uint16
	rip   uint32
	rport uint16
}

// timerEvent is work queued to the TCP timer thread.
type timerEvent struct {
	c         *Conn
	winUpdate bool // window-update probe rather than an RTO expiry
}

// WindowUpdateInterval paces receiver-side window-update probes while the
// advertised window is closed or nearly closed (the role a sender-side
// persist timer plays in BSD).
const WindowUpdateInterval = sim.Millisecond

// Layer is the TCP instance on one CAB.
type Layer struct {
	ip    *ip.Layer
	rt    *mailbox.Runtime
	inBox *mailbox.Mailbox

	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	nextEphem uint16
	nextISS   uint32

	sendBox *mailbox.Mailbox // the §4.2 TCP send-request mailbox

	// Timer events are handed to a thread so connection state is always
	// mutated under mutexes, never from interrupt handlers (§4.2).
	timerQ    []timerEvent
	timerCond *threads.Cond
	timerMu   *threads.Mutex

	checksum bool // software data checksum on/off (Figure 7 ablation)

	// Counters live in the observability registry (metric layer "tcp",
	// scope "cab<N>"); Stats() snapshots them for callers.
	segsIn, segsOut, badChecksum, retransmits, drops *obs.Counter
	ackRTT                                           *obs.Histogram // send-to-cumulative-ack latency

	obs  *obs.Observer
	node int
}

// NewLayer installs TCP on an IP layer and starts its input, send and
// timer threads.
func NewLayer(l *ip.Layer, rt *mailbox.Runtime) *Layer {
	t := &Layer{
		ip:        l,
		rt:        rt,
		inBox:     rt.Create("tcp.in"),
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Listener),
		nextEphem: ephemeralBase,
		nextISS:   1,
		sendBox:   rt.Create("tcp.sendreq"),
		checksum:  true,
	}
	t.inBox.SetCapacity(256 << 10)
	t.sendBox.SetCapacity(256 << 10)
	t.timerCond = threads.NewCond(rt.CAB().Sched, "tcp.timer")
	t.timerMu = threads.NewMutex("tcp.timermu")
	rt.CAB().Sched.Fork("tcp-input", threads.SystemPriority, t.inputThread)
	rt.CAB().Sched.Fork("tcp-send", threads.SystemPriority, t.sendThread)
	rt.CAB().Sched.Fork("tcp-timer", threads.SystemPriority, t.timerThread)
	l.Register(wire.ProtoTCP, t)
	t.node = int(rt.CAB().Node())
	t.obs = obs.Ensure(rt.CAB().Kernel())
	m := t.obs.Metrics()
	scope := fmt.Sprintf("cab%d", t.node)
	t.segsIn = m.Counter(obs.LayerTCP, "segs_in", scope)
	t.segsOut = m.Counter(obs.LayerTCP, "segs_out", scope)
	t.badChecksum = m.Counter(obs.LayerTCP, "bad_checksum", scope)
	t.retransmits = m.Counter(obs.LayerTCP, "retransmits", scope)
	t.drops = m.Counter(obs.LayerTCP, "drops", scope)
	t.ackRTT = m.Histogram(obs.LayerTCP, "ack_rtt", scope)
	return t
}

// SetChecksum enables or disables the software data checksum; the "TCP
// w/o checksum" curve of Figure 7 runs with it off, relying on the CAB's
// hardware CRC exactly as RMP does (§6.2).
func (t *Layer) SetChecksum(on bool) { t.checksum = on }

// InputMailbox implements ip.Upper.
func (t *Layer) InputMailbox() *mailbox.Mailbox { return t.inBox }

// Stats is a snapshot of a TCP layer's counters. The same values are
// published through the observability registry (layer "tcp", scope
// "cab<N>"); this struct is the stable programmatic interface.
type Stats struct {
	SegsIn      uint64 // segments accepted by a connection's state machine
	SegsOut     uint64 // segments transmitted (including RSTs and pure ACKs)
	BadChecksum uint64 // segments discarded by the software checksum
	Retransmits uint64 // RTO-driven retransmissions
	Drops       uint64 // segments dropped (no connection, or out of order)
}

// Stats returns a snapshot of the TCP counters.
func (t *Layer) Stats() Stats {
	return Stats{
		SegsIn:      t.segsIn.Value(),
		SegsOut:     t.segsOut.Value(),
		BadChecksum: t.badChecksum.Value(),
		Retransmits: t.retransmits.Value(),
		Drops:       t.drops.Value(),
	}
}

// Listener accepts incoming connections on a port.
type Listener struct {
	layer   *Layer
	port    uint16
	backlog []*Conn
	mu      *threads.Mutex
	cond    *threads.Cond
}

// Listen binds a port for passive opens.
func (t *Layer) Listen(port uint16) (*Listener, error) {
	if _, ok := t.listeners[port]; ok {
		return nil, fmt.Errorf("tcp: port %d already listening", port)
	}
	ln := &Listener{
		layer: t, port: port,
		mu:   threads.NewMutex(fmt.Sprintf("tcp.listen%d", port)),
		cond: threads.NewCond(t.rt.CAB().Sched, fmt.Sprintf("tcp.accept%d", port)),
	}
	t.listeners[port] = ln
	return ln, nil
}

// Accept blocks until a connection completes its handshake. CAB threads
// only (host processes accept through a CAB-resident server in the
// paper's socket emulation; see the netdev level for host-resident TCP).
func (ln *Listener) Accept(ctx exec.Context) *Conn {
	ln.mu.Lock(ctx.T)
	for len(ln.backlog) == 0 {
		ln.cond.Wait(ctx.T, ln.mu)
	}
	c := ln.backlog[0]
	ln.backlog = ln.backlog[1:]
	ln.mu.Unlock(ctx.T)
	return c
}

// Conn is one TCP connection.
type Conn struct {
	layer *Layer
	key   connKey
	state State

	// Send sequence space.
	iss    uint32
	sndUna uint32
	sndNxt uint32
	sndWnd uint32

	// Receive sequence space.
	irs    uint32
	rcvNxt uint32

	retransQ []*txSeg
	rtoTimer sim.Timer

	rcvBox     *mailbox.Mailbox // in-order payload for the user
	rcvEOF     bool
	sentFin    bool
	acceptLn   *Listener  // pending listener notification (SynRcvd)
	winTimer   sim.Timer // pending window-update probe
	lastAdvWin uint32     // window advertised in the last transmitted segment

	mu    *threads.Mutex
	cond  *threads.Cond // state changes, window openings, ack arrivals
	mss   int
	timeW sim.Timer
}

// txSeg is an unacknowledged transmitted segment.
type txSeg struct {
	seq    uint32
	data   []byte
	fin    bool
	owner  *mailbox.Msg // send-request message to release when acked
	last   bool         // final segment drawing on owner
	sentAt sim.Time     // first transmission (for the ack_rtt histogram)
}

func (t *Layer) newConn(key connKey) *Conn {
	t.nextISS += 64000
	c := &Conn{
		layer: t, key: key, state: Closed,
		iss:    t.nextISS,
		sndWnd: DefaultWindow,
		rcvBox: t.rt.Create(fmt.Sprintf("tcp.rcv.%d-%d", key.lport, key.rport)),
		mu:     threads.NewMutex(fmt.Sprintf("tcp.conn.%d", key.lport)),
		cond:   threads.NewCond(t.rt.CAB().Sched, fmt.Sprintf("tcp.cond.%d", key.lport)),
		mss:    MSS,
	}
	c.rcvBox.SetCapacity(DefaultWindow + 16<<10)
	c.sndUna = c.iss
	c.sndNxt = c.iss
	t.conns[key] = c
	return c
}

// Connect performs an active open to dstIP:dstPort from a CAB thread,
// blocking until the connection is established.
func (t *Layer) Connect(ctx exec.Context, dstIP uint32, dstPort uint16) (*Conn, error) {
	t.nextEphem++
	key := connKey{lport: t.nextEphem, rip: dstIP, rport: dstPort}
	c := t.newConn(key)
	c.mu.Lock(ctx.T)
	c.state = SynSent
	c.sndNxt = c.iss + 1
	c.transmit(ctx, wire.TCPSyn, c.iss, nil)
	c.armRTO()
	for c.state != Established && c.state != Closed {
		if !c.cond.WaitTimeout(ctx.T, c.mu, ConnectTimeout) {
			c.state = Closed
			delete(t.conns, key)
			c.mu.Unlock(ctx.T)
			return nil, fmt.Errorf("tcp: connect to %s:%d timed out", wire.FormatIP(dstIP), dstPort)
		}
	}
	ok := c.state == Established
	c.mu.Unlock(ctx.T)
	if !ok {
		return nil, fmt.Errorf("tcp: connect to %s:%d refused", wire.FormatIP(dstIP), dstPort)
	}
	return c, nil
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// RecvBox returns the user's receive mailbox; data segments are Enqueued
// here with headers already deleted (paper §4.2).
func (c *Conn) RecvBox() *mailbox.Mailbox { return c.rcvBox }

// Send queues data for transmission. From a host process the request goes
// through the TCP send-request mailbox (paper §4.2), the data crossing
// the VME bus once into CAB memory; from a CAB thread the segments are
// cut directly ("CAB-resident senders can do this directly without
// involving the TCP send thread").
func (c *Conn) Send(ctx exec.Context, data []byte) {
	if ctx.IsHost() {
		box := c.layer.sendBox
		m := box.BeginPut(ctx, len(data))
		m.Write(ctx, 0, data)
		m.Meta = c
		box.EndPut(ctx, m)
		return
	}
	c.sendData(ctx, data, nil)
}

// sendThread services the send-request mailbox (paper §4.2: "The TCP send
// thread on the CAB services this request by placing the data on the send
// queue of the appropriate connection and calling the TCP output
// routine").
func (t *Layer) sendThread(th *threads.Thread) {
	ctx := exec.OnCAB(th)
	for {
		m := t.sendBox.BeginGet(ctx)
		c, ok := m.Meta.(*Conn)
		if !ok {
			t.sendBox.EndGet(ctx, m)
			continue
		}
		c.sendData(ctx, m.Data(), m)
	}
}

// sendData segments and transmits data, blocking while the send window is
// full. owner (the send-request message holding the bytes) is released
// when its last segment is acknowledged.
func (c *Conn) sendData(ctx exec.Context, data []byte, owner *mailbox.Msg) {
	c.mu.Lock(ctx.T)
	queuedLast := false
	for off := 0; off < len(data); {
		if c.state != Established && c.state != CloseWait {
			break // connection went away; drop the rest
		}
		n := len(data) - off
		if n > c.mss {
			n = c.mss
		}
		// Ack-gated sender: wait for the outstanding segment to be
		// acknowledged and for window room. With one-MSS buffering this
		// is effectively a stop-and-wait sender — true to the era's tiny
		// socket buffers, and the reason the Figure 7 TCP curves track
		// below RMP with the software checksum on the critical path
		// rather than hidden under fiber serialization.
		for c.sndNxt != c.sndUna || uint32(n) > c.sndWnd {
			c.cond.Wait(ctx.T, c.mu)
			if c.state != Established && c.state != CloseWait {
				break
			}
		}
		if c.state != Established && c.state != CloseWait {
			break
		}
		seg := &txSeg{seq: c.sndNxt, data: data[off : off+n], sentAt: c.layer.now()}
		if off+n == len(data) {
			seg.owner = owner
			seg.last = true
			queuedLast = true
		}
		c.retransQ = append(c.retransQ, seg)
		c.transmit(ctx, wire.TCPAck|wire.TCPPsh, seg.seq, seg.data)
		c.sndNxt += uint32(n)
		c.armRTO()
		off += n
	}
	c.mu.Unlock(ctx.T)
	if owner != nil && !queuedLast {
		// The final segment never entered the retransmission queue
		// (connection died): release the request here instead of the
		// ack path.
		c.layer.sendBox.EndGet(ctx, owner)
	}
}

// Recv returns the next in-order data message, or nil at EOF (peer
// closed). Release messages with RecvDone.
func (c *Conn) Recv(ctx exec.Context) *mailbox.Msg {
	m := c.rcvBox.BeginGet(ctx)
	if m.Len() == 0 { // EOF sentinel
		c.rcvBox.EndGet(ctx, m)
		// Re-post the sentinel so further Recv calls also see EOF.
		if s := c.rcvBox.BeginPutNB(ctx, 0); s != nil {
			c.rcvBox.EndPut(ctx, s)
		}
		return nil
	}
	return m
}

// RecvPoll is Recv with the spinning low-latency wait (host fast path).
func (c *Conn) RecvPoll(ctx exec.Context) *mailbox.Msg {
	m := c.rcvBox.BeginGetPoll(ctx)
	if m.Len() == 0 { // EOF sentinel
		c.rcvBox.EndGet(ctx, m)
		if s := c.rcvBox.BeginPutNB(ctx, 0); s != nil {
			c.rcvBox.EndPut(ctx, s)
		}
		return nil
	}
	return m
}

// RecvDone releases a message returned by Recv. If the receive window had
// been advertised (nearly) closed, draining the mailbox reopens it, so a
// window-update ACK is scheduled — the role the application read plays in
// BSD (without it the sender would stall until a probe).
func (c *Conn) RecvDone(ctx exec.Context, m *mailbox.Msg) {
	c.rcvBox.EndGet(ctx, m)
	if c.lastAdvWin < MSS && c.rcvWindow() >= MSS {
		t := c.layer
		t.timerQ = append(t.timerQ, timerEvent{c: c, winUpdate: true})
		t.timerCond.Signal()
	}
}

// Close sends FIN after all queued data is acknowledged and returns once
// the connection has fully closed (or the linger timeout passes).
func (c *Conn) Close(ctx exec.Context) {
	c.mu.Lock(ctx.T)
	for c.sndNxt != c.sndUna && (c.state == Established || c.state == CloseWait) {
		c.cond.Wait(ctx.T, c.mu)
	}
	switch c.state {
	case Established:
		c.state = FinWait1
	case CloseWait:
		c.state = LastAck
	default:
		c.mu.Unlock(ctx.T)
		return
	}
	c.sentFin = true
	fin := &txSeg{seq: c.sndNxt, fin: true, sentAt: c.layer.now()}
	c.retransQ = append(c.retransQ, fin)
	c.transmit(ctx, wire.TCPFin|wire.TCPAck, c.sndNxt, nil)
	c.sndNxt++
	c.armRTO()
	for c.state != Closed && c.state != TimeWaitState {
		if !c.cond.WaitTimeout(ctx.T, c.mu, ConnectTimeout) {
			break
		}
	}
	c.mu.Unlock(ctx.T)
}

// transmit emits one segment. Callers hold c.mu (or own the conn during
// handshake). The checksum is computed in software over the real bytes
// when enabled, with the cost charged at the CAB checksum rate.
func (c *Conn) transmit(ctx exec.Context, flags uint8, seq uint32, data []byte) {
	t := c.layer
	cost := ctx.Cost()
	ctx.Compute(cost.TCPOutput)
	hdr := make([]byte, wire.TCPHeaderLen)
	win := c.rcvWindow()
	c.lastAdvWin = win
	h := wire.TCPHeader{
		SrcPort: c.key.lport, DstPort: c.key.rport,
		Seq: seq, Ack: c.rcvNxt, Flags: flags,
		Window: uint16(win),
	}
	h.Marshal(hdr)
	if win < DefaultWindow/4 {
		// We just advertised a (nearly) closed window; the peer will
		// stall until we say it reopened, so arm a window-update probe.
		c.armWindowUpdate()
	}
	if t.checksum {
		ctx.Compute(cost.ChecksumTime(wire.TCPHeaderLen + len(data)))
		sum := wire.PseudoHeaderSum(t.ip.Addr(), c.key.rip, wire.ProtoTCP, wire.TCPHeaderLen+len(data))
		sum = wire.SumWords(sum, hdr)
		sum = wire.SumWords(sum, data)
		ck := wire.FinishChecksum(sum)
		hdr[16], hdr[17] = byte(ck>>8), byte(ck)
	}
	t.segsOut.Inc()
	if t.obs.Tracing() {
		t.obs.InstantSeq(t.node, obs.LayerTCP, "tx", uint64(seq), len(data))
	}
	_ = t.ip.Output(ctx, wire.IPv4Header{Protocol: wire.ProtoTCP, Dst: c.key.rip}, hdr, data)
}

// now reads the CAB's virtual clock.
func (t *Layer) now() sim.Time { return t.rt.CAB().Kernel().Now() }

// sendRST answers a stray segment with a reset (RFC 793 rules for the
// CLOSED state).
func (t *Layer) sendRST(ctx exec.Context, rip uint32, h wire.TCPHeader) {
	ctx.Compute(ctx.Cost().TCPOutput)
	hdr := make([]byte, wire.TCPHeaderLen)
	rst := wire.TCPHeader{
		SrcPort: h.DstPort, DstPort: h.SrcPort,
		Flags: wire.TCPRst | wire.TCPAck,
		Ack:   h.Seq + 1,
	}
	if h.Flags&wire.TCPAck != 0 {
		rst.Seq = h.Ack
		rst.Flags = wire.TCPRst
	}
	rst.Marshal(hdr)
	if t.checksum {
		ctx.Compute(ctx.Cost().ChecksumTime(wire.TCPHeaderLen))
		sum := wire.PseudoHeaderSum(t.ip.Addr(), rip, wire.ProtoTCP, wire.TCPHeaderLen)
		sum = wire.SumWords(sum, hdr)
		ck := wire.FinishChecksum(sum)
		hdr[16], hdr[17] = byte(ck>>8), byte(ck)
	}
	t.segsOut.Inc()
	_ = t.ip.Output(ctx, wire.IPv4Header{Protocol: wire.ProtoTCP, Dst: rip}, hdr)
}

// rcvWindow is the space we advertise: the free budget of the receive
// mailbox, capped at the fixed window.
func (c *Conn) rcvWindow() uint32 {
	free := DefaultWindow
	if p := c.rcvBox.Pending(); p > 0 {
		// Narrow as the user falls behind.
		used := c.rcvBox.QueuedBytes()
		if used >= DefaultWindow {
			return 0
		}
		free = DefaultWindow - used
	}
	return uint32(free)
}

// armRTO (re)arms the retransmission timer. Callers hold c.mu.
func (c *Conn) armRTO() {
	c.rtoTimer.Stop()
	t := c.layer
	k := t.rt.CAB().Kernel()
	c.rtoTimer = k.After(RTO, func() {
		// Queue to the timer thread; state is only touched under mutexes
		// held by threads (§4.2).
		t.timerQ = append(t.timerQ, timerEvent{c: c})
		t.timerCond.Signal()
	})
}

// armWindowUpdate schedules a pure-ACK probe that re-advertises the
// receive window once the user has drained the receive mailbox.
func (c *Conn) armWindowUpdate() {
	if c.winTimer.Pending() {
		return
	}
	t := c.layer
	k := t.rt.CAB().Kernel()
	c.winTimer = k.After(WindowUpdateInterval, func() {
		c.winTimer = sim.Timer{}
		t.timerQ = append(t.timerQ, timerEvent{c: c, winUpdate: true})
		t.timerCond.Signal()
	})
}

// timerThread retransmits on RTO expiry.
func (t *Layer) timerThread(th *threads.Thread) {
	ctx := exec.OnCAB(th)
	for {
		t.timerMu.Lock(th)
		for len(t.timerQ) == 0 {
			t.timerCond.Wait(th, t.timerMu)
		}
		ev := t.timerQ[0]
		t.timerQ = t.timerQ[1:]
		t.timerMu.Unlock(th)
		c := ev.c

		if ev.winUpdate {
			c.mu.Lock(th)
			if c.state == Established || c.state == FinWait1 || c.state == FinWait2 {
				// Re-advertise the window; transmit re-arms the probe if
				// it is still (nearly) closed.
				c.transmit(ctx, wire.TCPAck, c.sndNxt, nil)
			}
			c.mu.Unlock(th)
			continue
		}

		c.mu.Lock(th)
		if len(c.retransQ) > 0 {
			t.retransmits.Inc()
			seg := c.retransQ[0]
			if t.obs.Tracing() {
				t.obs.InstantSeq(t.node, obs.LayerTCP, "rto", uint64(seg.seq), len(seg.data))
			}
			switch {
			case seg.fin:
				c.transmit(ctx, wire.TCPFin|wire.TCPAck, seg.seq, nil)
			case c.state == SynSent:
				c.transmit(ctx, wire.TCPSyn, seg.seq, seg.data)
			case c.state == SynRcvd:
				c.transmit(ctx, wire.TCPSyn|wire.TCPAck, seg.seq, seg.data)
			default:
				c.transmit(ctx, wire.TCPAck|wire.TCPPsh, seg.seq, seg.data)
			}
			c.armRTO()
		} else if c.state == SynSent || c.state == SynRcvd {
			// Handshake segments are implicit (not in retransQ).
			t.retransmits.Inc()
			if t.obs.Tracing() {
				t.obs.InstantSeq(t.node, obs.LayerTCP, "rto", uint64(c.iss), 0)
			}
			if c.state == SynSent {
				c.transmit(ctx, wire.TCPSyn, c.iss, nil)
			} else {
				c.transmit(ctx, wire.TCPSyn|wire.TCPAck, c.iss, nil)
			}
			c.armRTO()
		}
		c.mu.Unlock(th)
	}
}

// inputThread is the paper's TCP input thread.
func (t *Layer) inputThread(th *threads.Thread) {
	ctx := exec.OnCAB(th)
	for {
		m := t.inBox.BeginGet(ctx)
		t.handleSegment(ctx, m)
	}
}

// handleSegment performs standard TCP input processing on one segment.
func (t *Layer) handleSegment(ctx exec.Context, m *mailbox.Msg) {
	cost := ctx.Cost()
	ctx.Compute(cost.TCPInput)
	data := m.Data()
	var iph wire.IPv4Header
	if iph.Unmarshal(data) != nil || len(data) < wire.IPv4HeaderLen+wire.TCPHeaderLen {
		t.inBox.EndGet(ctx, m)
		return
	}
	seg := data[wire.IPv4HeaderLen:]
	var h wire.TCPHeader
	if h.Unmarshal(seg) != nil {
		t.inBox.EndGet(ctx, m)
		return
	}
	if t.checksum && h.Checksum != 0 {
		ctx.Compute(cost.ChecksumTime(len(seg)))
		if !wire.VerifyTCP(iph.Src, iph.Dst, seg) {
			t.badChecksum.Inc()
			t.inBox.EndGet(ctx, m)
			return
		}
	}
	payload := seg[wire.TCPHeaderLen:]

	key := connKey{lport: h.DstPort, rip: iph.Src, rport: h.SrcPort}
	c, ok := t.conns[key]
	if !ok {
		// SYN to a listener?
		if h.Flags&wire.TCPSyn != 0 && h.Flags&wire.TCPAck == 0 {
			if ln, lok := t.listeners[h.DstPort]; lok {
				c = t.newConn(key)
				c.listenerAccept(ctx, ln, h)
				t.inBox.EndGet(ctx, m)
				return
			}
		}
		// No connection and no listener: answer with RST so an active
		// opener learns "connection refused" instead of timing out.
		t.drops.Inc()
		if h.Flags&wire.TCPRst == 0 {
			t.sendRST(ctx, iph.Src, h)
		}
		t.inBox.EndGet(ctx, m)
		return
	}

	c.mu.Lock(ctx.T)
	c.processSegment(ctx, h, payload, m)
	c.mu.Unlock(ctx.T)
}

// listenerAccept handles a SYN for a listening port (conn is fresh).
func (c *Conn) listenerAccept(ctx exec.Context, ln *Listener, h wire.TCPHeader) {
	c.mu.Lock(ctx.T)
	c.state = SynRcvd
	c.irs = h.Seq
	c.rcvNxt = h.Seq + 1
	c.sndWnd = uint32(h.Window)
	c.acceptLn = ln
	c.transmit(ctx, wire.TCPSyn|wire.TCPAck, c.iss, nil)
	c.sndNxt = c.iss + 1
	c.armRTO()
	c.mu.Unlock(ctx.T)
}

// processSegment runs the state machine for an arriving segment. The
// caller holds c.mu and is responsible for EndGet/Enqueue of m.
func (c *Conn) processSegment(ctx exec.Context, h wire.TCPHeader, payload []byte, m *mailbox.Msg) {
	t := c.layer
	t.segsIn.Inc()
	if t.obs.Tracing() {
		t.obs.InstantSeq(t.node, obs.LayerTCP, "rx", uint64(h.Seq), len(payload))
	}
	release := true
	defer func() {
		if release {
			t.inBox.EndGet(ctx, m)
		}
	}()

	if h.Flags&wire.TCPRst != 0 {
		c.teardown(ctx) // Connect/Close waiters observe Closed ("refused")
		return
	}

	// Handshake transitions.
	switch c.state {
	case SynSent:
		if h.Flags&(wire.TCPSyn|wire.TCPAck) == wire.TCPSyn|wire.TCPAck && h.Ack == c.iss+1 {
			c.irs = h.Seq
			c.rcvNxt = h.Seq + 1
			c.sndUna = h.Ack
			c.sndWnd = uint32(h.Window)
			c.state = Established
			c.stopRTOIfIdle()
			c.transmit(ctx, wire.TCPAck, c.sndNxt, nil)
			c.cond.Broadcast()
		}
		return
	case SynRcvd:
		if h.Flags&wire.TCPAck != 0 && h.Ack == c.iss+1 {
			c.sndUna = h.Ack
			c.sndWnd = uint32(h.Window)
			c.state = Established
			c.stopRTOIfIdle()
			c.cond.Broadcast()
			if ln := c.acceptLn; ln != nil {
				c.acceptLn = nil
				ln.mu.Lock(ctx.T)
				ln.backlog = append(ln.backlog, c)
				ln.mu.Unlock(ctx.T)
				ln.cond.Broadcast()
			}
			// Fall through: the ACK may carry data.
		} else {
			return
		}
	case Closed, Listen:
		return
	}

	// ACK processing: advance sndUna, drop acked segments, release
	// send-request buffers, open the window.
	if h.Flags&wire.TCPAck != 0 && seqLT(c.sndUna, h.Ack) && seqLEQ(h.Ack, c.sndNxt) {
		c.sndUna = h.Ack
		c.sndWnd = uint32(h.Window)
		for len(c.retransQ) > 0 {
			s := c.retransQ[0]
			end := s.seq + uint32(len(s.data))
			if s.fin {
				end = s.seq + 1
			}
			if !seqLEQ(end, c.sndUna) {
				break
			}
			c.retransQ = c.retransQ[1:]
			if s.sentAt != 0 {
				t.ackRTT.Observe(sim.Duration(t.now() - s.sentAt))
			}
			if s.last && s.owner != nil {
				t.sendBox.EndGet(ctx, s.owner)
			}
		}
		c.stopRTOIfIdle()
		if len(c.retransQ) > 0 {
			c.armRTO()
		}
		// FIN acknowledged?
		if c.sentFin && c.sndUna == c.sndNxt {
			switch c.state {
			case FinWait1:
				c.state = FinWait2
			case Closing:
				c.enterTimeWait()
			case LastAck:
				c.teardown(ctx)
			}
		}
		c.cond.Broadcast()
	} else if h.Flags&wire.TCPAck != 0 {
		c.sndWnd = uint32(h.Window) // window update on duplicate ack
		c.cond.Broadcast()
	}

	// Data processing: accept only the next in-order segment; everything
	// else is dropped and re-acked (go-back-N receiver).
	if len(payload) > 0 {
		if h.Seq == c.rcvNxt && (c.state == Established || c.state == FinWait1 || c.state == FinWait2) {
			c.rcvNxt += uint32(len(payload))
			// Delete the headers in place and hand the payload to the
			// user's receive mailbox — no copying (paper §4.2).
			m.TrimPrefix(ctx, wire.IPv4HeaderLen+wire.TCPHeaderLen)
			t.inBox.Enqueue(ctx, m, c.rcvBox)
			release = false
			c.transmit(ctx, wire.TCPAck, c.sndNxt, nil)
		} else {
			t.drops.Inc()
			c.transmit(ctx, wire.TCPAck, c.sndNxt, nil) // duplicate ack
			return
		}
	}

	// FIN processing.
	if h.Flags&wire.TCPFin != 0 && seqLEQ(h.Seq+uint32(len(payload)), c.rcvNxt) {
		c.rcvNxt++
		c.transmit(ctx, wire.TCPAck, c.sndNxt, nil)
		c.deliverEOF(ctx)
		switch c.state {
		case Established:
			c.state = CloseWait
		case FinWait1:
			c.state = Closing
		case FinWait2:
			c.enterTimeWait()
		}
		c.cond.Broadcast()
	}
}

// deliverEOF posts the zero-length EOF sentinel to the receive mailbox.
func (c *Conn) deliverEOF(ctx exec.Context) {
	if c.rcvEOF {
		return
	}
	c.rcvEOF = true
	if s := c.rcvBox.BeginPutNB(ctx, 0); s != nil {
		c.rcvBox.EndPut(ctx, s)
	}
}

// stopRTOIfIdle cancels the timer when nothing is outstanding.
func (c *Conn) stopRTOIfIdle() {
	if len(c.retransQ) == 0 {
		c.rtoTimer.Stop()
		c.rtoTimer = sim.Timer{}
	}
}

// enterTimeWait lingers briefly, then tears down.
func (c *Conn) enterTimeWait() {
	c.state = TimeWaitState
	t := c.layer
	k := t.rt.CAB().Kernel()
	c.timeW = k.After(TimeWait, func() {
		delete(t.conns, c.key)
		c.state = Closed
	})
	c.cond.Broadcast()
}

// teardown closes immediately, releasing any send-request buffers still
// referenced by the retransmission queue.
func (c *Conn) teardown(ctx exec.Context) {
	c.state = Closed
	c.rtoTimer.Stop()
	c.rtoTimer = sim.Timer{}
	for _, s := range c.retransQ {
		if s.last && s.owner != nil {
			c.layer.sendBox.EndGet(ctx, s.owner)
		}
	}
	c.retransQ = nil
	c.deliverEOF(ctx)
	delete(c.layer.conns, c.key)
	c.cond.Broadcast()
}
