package tcp

import (
	"nectar/internal/obs"

	"testing"
	"testing/quick"
)

func TestSeqComparisons(t *testing.T) {
	cases := []struct {
		a, b    uint32
		lt, leq bool
	}{
		{0, 1, true, true},
		{1, 0, false, false},
		{5, 5, false, true},
		{0xFFFFFFF0, 0x10, true, true},   // wraparound: a is "before" b
		{0x10, 0xFFFFFFF0, false, false}, // and not vice versa
		{0, 0x7FFFFFFF, true, true},
	}
	for _, c := range cases {
		if got := seqLT(c.a, c.b); got != c.lt {
			t.Errorf("seqLT(%#x,%#x) = %v, want %v", c.a, c.b, got, c.lt)
		}
		if got := seqLEQ(c.a, c.b); got != c.leq {
			t.Errorf("seqLEQ(%#x,%#x) = %v, want %v", c.a, c.b, got, c.leq)
		}
	}
}

func TestSeqArithmeticProperties(t *testing.T) {
	// Within half the sequence space, seqLT agrees with ordinary addition:
	// a < a+d for 0 < d < 2^31.
	f := func(a uint32, dRaw uint32) bool {
		d := dRaw % 0x7FFFFFFF
		if d == 0 {
			d = 1
		}
		b := a + d
		return seqLT(a, b) && !seqLT(b, a) && seqLEQ(a, b) && !seqLEQ(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Reflexivity of seqLEQ, irreflexivity of seqLT.
	g := func(a uint32) bool { return seqLEQ(a, a) && !seqLT(a, a) }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestStateStrings(t *testing.T) {
	for s := Closed; s <= TimeWaitState; s++ {
		if s.String() == "" {
			t.Errorf("state %d has no name", int(s))
		}
	}
	if Established.String() != "Established" {
		t.Errorf("Established.String() = %q", Established.String())
	}
}

func TestProtocolConstantsSane(t *testing.T) {
	if MSS > DefaultWindow {
		t.Error("MSS exceeds the advertised window; senders would deadlock")
	}
	if RTO <= 0 || ConnectTimeout <= RTO {
		t.Error("timeout ordering broken")
	}
}

func TestStatsSnapshot(t *testing.T) {
	// Stats must mirror the registry-backed counters field for field.
	r := obs.NewRegistry()
	l := &Layer{
		segsIn:      r.Counter(obs.LayerTCP, "segs_in", "cab1"),
		segsOut:     r.Counter(obs.LayerTCP, "segs_out", "cab1"),
		badChecksum: r.Counter(obs.LayerTCP, "bad_checksum", "cab1"),
		retransmits: r.Counter(obs.LayerTCP, "retransmits", "cab1"),
		drops:       r.Counter(obs.LayerTCP, "drops", "cab1"),
	}
	l.segsIn.Add(3)
	l.segsOut.Add(5)
	l.badChecksum.Inc()
	l.retransmits.Add(2)
	l.drops.Add(4)
	got := l.Stats()
	want := Stats{SegsIn: 3, SegsOut: 5, BadChecksum: 1, Retransmits: 2, Drops: 4}
	if got != want {
		t.Errorf("Stats() = %+v, want %+v", got, want)
	}
	// The registry sees the same values under the tcp layer.
	if v := r.Snapshot(0).Value(obs.LayerTCP, "segs_out", "cab1"); v != 5 {
		t.Errorf("registry segs_out = %d, want 5", v)
	}
}
