package wire

import (
	"math/rand"
	"testing"
)

// TestSumWordsMatchesRef proves the word-at-a-time SumWords is equivalent
// to the scalar reference for every length 0..192, every alignment offset
// 0..7 within a shared backing array, and several nonzero starting sums.
// Equivalence is asserted on the folded FinishChecksum result: the two
// implementations may carry differently in their partial accumulators,
// but the folded ones'-complement value must agree exactly.
func TestSumWordsMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1990))
	back := make([]byte, 256)
	for i := range back {
		back[i] = byte(rng.Intn(256))
	}
	starts := []uint32{0, 1, 0xffff, 0x12345678, 0xfffffffe}
	for n := 0; n <= 192; n++ {
		for off := 0; off < 8; off++ {
			data := back[off : off+n]
			for _, s := range starts {
				got := FinishChecksum(SumWords(s, data))
				want := FinishChecksum(sumWordsRef(s, data))
				if got != want {
					t.Fatalf("SumWords(len=%d off=%d start=%#x) = %#04x, ref = %#04x",
						n, off, s, got, want)
				}
			}
		}
	}
}

// TestSumWordsSplitSpans checks that chaining SumWords across an arbitrary
// split (the pseudo-header-then-segment pattern) matches both the one-shot
// fast sum and the one-shot reference.
func TestSumWordsSplitSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 131)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	want := FinishChecksum(sumWordsRef(0, data))
	for split := 0; split <= len(data); split++ {
		// Odd-length first spans shift the word phase of the second span;
		// only even splits are valid checksum span boundaries, which is
		// how the protocol code uses it (pseudo-header is 12 bytes).
		if split%2 == 1 {
			continue
		}
		got := FinishChecksum(SumWords(SumWords(0, data[:split]), data[split:]))
		if got != want {
			t.Fatalf("split at %d: chained sum %#04x, one-shot ref %#04x", split, got, want)
		}
	}
}

// FuzzSumWords fuzzes the fast implementation against the scalar
// reference on arbitrary byte strings and starting sums.
func FuzzSumWords(f *testing.F) {
	f.Add(uint32(0), []byte{})
	f.Add(uint32(0), []byte{0x01})
	f.Add(uint32(0xffff), []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7, 0x00})
	f.Add(uint32(0x12345678), make([]byte, 64))
	f.Fuzz(func(t *testing.T, start uint32, data []byte) {
		got := FinishChecksum(SumWords(start, data))
		want := FinishChecksum(sumWordsRef(start, data))
		if got != want {
			t.Fatalf("SumWords(start=%#x, len=%d) = %#04x, ref = %#04x",
				start, len(data), got, want)
		}
	})
}

// benchSink keeps the benchmarked sums observable.
var benchSink uint32

func benchSumWords(b *testing.B, n int, fn func(uint32, []byte) uint32) {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 7)
	}
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = fn(0, data)
	}
}

// BenchmarkSumWords measures the word-at-a-time checksum at the paper's
// message sizes; compare against BenchmarkSumWordsRef (the acceptance bar
// is >= 2x bytes/sec on the kilobyte sizes).
func BenchmarkSumWords(b *testing.B) {
	for _, n := range []int{64, 1024, 8192} {
		b.Run(itoa(n), func(b *testing.B) { benchSumWords(b, n, SumWords) })
	}
}

func BenchmarkSumWordsRef(b *testing.B) {
	for _, n := range []int{64, 1024, 8192} {
		b.Run(itoa(n), func(b *testing.B) { benchSumWords(b, n, sumWordsRef) })
	}
}

// itoa avoids importing strconv just for benchmark names.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
