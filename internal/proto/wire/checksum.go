// Package wire defines the on-the-wire formats used in the Nectar
// reproduction: the datalink frame carried over the fiber (with its
// hardware-computed CRC trailer and source-route prefix), the Nectar
// transport headers (datagram, RMP, request-response), and standard IPv4,
// ICMP, UDP and TCP headers with real Internet checksums.
//
// All multi-byte fields are big-endian (network byte order). Every header
// type provides Marshal/Unmarshal that operate on caller-provided byte
// slices — buffers live in simulated CAB data memory and are never copied
// by the codec.
package wire

import (
	"encoding/binary"
	"math/bits"
)

// Checksum computes the Internet ones'-complement checksum over data,
// per RFC 1071. A trailing odd byte is padded with zero.
//
//nectar:hotpath
func Checksum(data []byte) uint16 {
	return FinishChecksum(SumWords(0, data))
}

// SumWords adds the 16-bit big-endian words of data into an ones'-
// complement partial sum. Use FinishChecksum to fold and invert. The
// partial form allows checksumming across discontiguous spans (e.g. the
// TCP pseudo-header followed by the segment).
//
// The fast path adds whole 64-bit big-endian words into the accumulator
// — 8 bytes per add, 32 bytes per unrolled iteration — counting the
// carries out of the top. That is sound because the ones'-complement
// checksum is arithmetic mod 2^16-1, and 2^64 = (2^16)^4 = 1 mod 2^16-1:
// a 64-bit word w0w1w2w3 folds to w0+w1+w2+w3, and every wrap of the
// accumulator folds back in as +1. A two-byte loop handles the sub-word
// tail and the odd-byte zero pad, and the final double fold to 32 bits
// is likewise congruent (2^32 = 1 mod 2^16-1). The returned partial may
// therefore differ from the scalar reference's as an integer, but is
// always congruent mod 2^16-1 and zero exactly when the reference's is,
// so FinishChecksum of the two is identical — the checksum_test.go
// property test and FuzzSumWords prove that on every length, alignment,
// starting sum, and span split. This is the paper's headline software
// cost: per-byte checksumming is what separates the TCP and RMP curves
// of Figures 7 and 8 (§6.2), so the simulator's own copy of it should
// not be the slow part of the wall clock.
//
//nectar:hotpath
func SumWords(sum uint32, data []byte) uint32 {
	acc := uint64(sum)
	var carry uint64
	for len(data) >= 32 {
		var c uint64
		acc, c = bits.Add64(acc, binary.BigEndian.Uint64(data), 0)
		acc, c = bits.Add64(acc, binary.BigEndian.Uint64(data[8:16]), c)
		acc, c = bits.Add64(acc, binary.BigEndian.Uint64(data[16:24]), c)
		acc, c = bits.Add64(acc, binary.BigEndian.Uint64(data[24:32]), c)
		carry += c
		data = data[32:]
	}
	for len(data) >= 8 {
		var c uint64
		acc, c = bits.Add64(acc, binary.BigEndian.Uint64(data), 0)
		carry += c
		data = data[8:]
	}
	// Fold to 33 bits and absorb the wraps (each is 1 mod 2^16-1); the
	// sub-word tail can no longer overflow 64 bits after this.
	acc = acc>>32 + acc&0xffffffff + carry
	n := len(data)
	i := 0
	for ; i+1 < n; i += 2 {
		acc += uint64(data[i])<<8 | uint64(data[i+1])
	}
	if n%2 == 1 {
		acc += uint64(data[n-1]) << 8
	}
	acc = acc>>32 + acc&0xffffffff
	acc = acc>>32 + acc&0xffffffff
	return uint32(acc)
}

// sumWordsRef is the scalar two-bytes-per-iteration reference
// implementation of SumWords, kept for the equivalence property test and
// the micro-benchmark baseline. Like SumWords it accumulates in 64 bits
// so carries are never dropped, making the two exactly interchangeable on
// any input (the historical uint32 accumulator silently lost a carry —
// one ulp mod 2^16-1 — once the running sum wrapped 2^32).
func sumWordsRef(sum uint32, data []byte) uint32 {
	acc := uint64(sum)
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		acc += uint64(data[i])<<8 | uint64(data[i+1])
	}
	if n%2 == 1 {
		acc += uint64(data[n-1]) << 8
	}
	acc = acc>>32 + acc&0xffffffff
	acc = acc>>32 + acc&0xffffffff
	return uint32(acc)
}

// FinishChecksum folds the carries of a partial sum and returns the
// ones'-complement result.
//
//nectar:hotpath
func FinishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyChecksum reports whether data (which includes its checksum field)
// sums to the all-ones pattern, i.e. the checksum is valid.
//
//nectar:hotpath
func VerifyChecksum(data []byte) bool {
	return FinishChecksum(SumWords(0, data)) == 0
}

// PseudoHeaderSum computes the partial sum of the TCP/UDP pseudo-header:
// source address, destination address, zero+protocol, and length.
//
//nectar:hotpath
func PseudoHeaderSum(src, dst uint32, proto uint8, length int) uint32 {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:], src)
	binary.BigEndian.PutUint32(b[4:], dst)
	b[8] = 0
	b[9] = proto
	binary.BigEndian.PutUint16(b[10:], uint16(length))
	return SumWords(0, b[:])
}
