// Package wire defines the on-the-wire formats used in the Nectar
// reproduction: the datalink frame carried over the fiber (with its
// hardware-computed CRC trailer and source-route prefix), the Nectar
// transport headers (datagram, RMP, request-response), and standard IPv4,
// ICMP, UDP and TCP headers with real Internet checksums.
//
// All multi-byte fields are big-endian (network byte order). Every header
// type provides Marshal/Unmarshal that operate on caller-provided byte
// slices — buffers live in simulated CAB data memory and are never copied
// by the codec.
package wire

import "encoding/binary"

// Checksum computes the Internet ones'-complement checksum over data,
// per RFC 1071. A trailing odd byte is padded with zero.
func Checksum(data []byte) uint16 {
	return FinishChecksum(SumWords(0, data))
}

// SumWords adds the 16-bit big-endian words of data into an ones'-
// complement partial sum. Use FinishChecksum to fold and invert. The
// partial form allows checksumming across discontiguous spans (e.g. the
// TCP pseudo-header followed by the segment).
func SumWords(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

// FinishChecksum folds the carries of a partial sum and returns the
// ones'-complement result.
func FinishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyChecksum reports whether data (which includes its checksum field)
// sums to the all-ones pattern, i.e. the checksum is valid.
func VerifyChecksum(data []byte) bool {
	return FinishChecksum(SumWords(0, data)) == 0
}

// PseudoHeaderSum computes the partial sum of the TCP/UDP pseudo-header:
// source address, destination address, zero+protocol, and length.
func PseudoHeaderSum(src, dst uint32, proto uint8, length int) uint32 {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:], src)
	binary.BigEndian.PutUint32(b[4:], dst)
	b[8] = 0
	b[9] = proto
	binary.BigEndian.PutUint16(b[10:], uint16(length))
	return SumWords(0, b[:])
}
