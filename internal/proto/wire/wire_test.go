package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 worked example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd trailing byte is padded with zero on the right.
	if Checksum([]byte{0x12}) != Checksum([]byte{0x12, 0x00}) {
		t.Error("odd-length padding mismatch")
	}
}

func TestChecksumVerifyProperty(t *testing.T) {
	// Property: appending the checksum of data makes the whole verify.
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		c := Checksum(data)
		whole := append(append([]byte{}, data...), byte(c>>8), byte(c))
		return VerifyChecksum(whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChecksumIncrementalProperty(t *testing.T) {
	// Property: SumWords over split spans equals the one-shot sum, for any
	// even split point.
	f := func(data []byte, splitRaw uint8) bool {
		split := int(splitRaw) % (len(data) + 1)
		split &^= 1 // keep word alignment
		one := FinishChecksum(SumWords(0, data))
		two := FinishChecksum(SumWords(SumWords(0, data[:split]), data[split:]))
		return one == two
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDatalinkHeaderRoundTrip(t *testing.T) {
	f := func(typ uint8, length uint16, src, dst uint16) bool {
		h := DatalinkHeader{Type: typ, Len: length, Src: NodeID(src), Dst: NodeID(dst)}
		var b [DatalinkHeaderLen]byte
		h.Marshal(b[:])
		var g DatalinkHeader
		if err := g.Unmarshal(b[:]); err != nil {
			return false
		}
		return g == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDatalinkHeaderBadMagic(t *testing.T) {
	var b [DatalinkHeaderLen]byte
	b[0] = 0x00
	var h DatalinkHeader
	if err := h.Unmarshal(b[:]); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestDatalinkHeaderTruncated(t *testing.T) {
	var h DatalinkHeader
	if err := h.Unmarshal(make([]byte, 3)); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestNectarHeaderRoundTrip(t *testing.T) {
	f := func(dst, src uint16, seq uint32, flags, window uint8, length uint16) bool {
		h := NectarHeader{
			DstBox: MailboxID(dst), SrcBox: MailboxID(src),
			Seq: seq, Flags: flags, Window: window, Len: length,
		}
		var b [NectarHeaderLen]byte
		h.Marshal(b[:])
		var g NectarHeader
		if err := g.Unmarshal(b[:]); err != nil {
			return false
		}
		return g == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4HeaderRoundTrip(t *testing.T) {
	f := func(tos uint8, totalLen, id uint16, ttl, proto uint8, src, dst uint32, mf bool, fragOff uint16) bool {
		h := IPv4Header{
			TOS: tos, TotalLen: totalLen, ID: id, TTL: ttl,
			Protocol: proto, Src: src, Dst: dst,
			FragOff: fragOff & IPOffMask,
		}
		if mf {
			h.Flags = IPFlagMF
		}
		var b [IPv4HeaderLen]byte
		h.Marshal(b[:])
		if !VerifyChecksum(b[:]) {
			return false // marshaled header must self-verify
		}
		var g IPv4Header
		if err := g.Unmarshal(b[:]); err != nil {
			return false
		}
		return g == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := IPv4Header{TotalLen: 40, ID: 7, TTL: 16, Protocol: ProtoTCP,
		Src: IPAddr(10, 9, 0, 1), Dst: IPAddr(10, 9, 0, 2)}
	var b [IPv4HeaderLen]byte
	h.Marshal(b[:])
	b[8] ^= 0xff // corrupt TTL
	if VerifyChecksum(b[:]) {
		t.Error("corrupted header passed checksum")
	}
}

func TestIPv4RejectsOptions(t *testing.T) {
	var b [24]byte
	b[0] = 0x46 // IHL 6: one option word
	var h IPv4Header
	if err := h.Unmarshal(b[:]); err == nil {
		t.Error("header with options accepted")
	}
}

func TestUDPHeaderRoundTrip(t *testing.T) {
	f := func(sp, dp, l, c uint16) bool {
		h := UDPHeader{SrcPort: sp, DstPort: dp, Len: l, Checksum: c}
		var b [UDPHeaderLen]byte
		h.Marshal(b[:])
		var g UDPHeader
		if err := g.Unmarshal(b[:]); err != nil {
			return false
		}
		return g == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCPHeaderRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win, urg uint16) bool {
		h := TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags & 0x1f, Window: win, Urgent: urg}
		var b [TCPHeaderLen]byte
		h.Marshal(b[:])
		var g TCPHeader
		if err := g.Unmarshal(b[:]); err != nil {
			return false
		}
		return g == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCPChecksumRoundTrip(t *testing.T) {
	src, dst := IPAddr(10, 9, 0, 1), IPAddr(10, 9, 0, 2)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	seg := make([]byte, TCPHeaderLen+len(payload))
	h := TCPHeader{SrcPort: 1234, DstPort: 80, Seq: 99, Ack: 12, Flags: TCPAck, Window: 4096}
	h.Marshal(seg)
	copy(seg[TCPHeaderLen:], payload)
	c := ChecksumTCP(src, dst, seg)
	seg[16], seg[17] = byte(c>>8), byte(c)
	if !VerifyTCP(src, dst, seg) {
		t.Fatal("checksummed segment does not verify")
	}
	seg[TCPHeaderLen+5] ^= 0x40 // corrupt payload
	if VerifyTCP(src, dst, seg) {
		t.Error("corrupted segment verified")
	}
}

func TestTCPChecksumPseudoHeaderMatters(t *testing.T) {
	src, dst := IPAddr(10, 9, 0, 1), IPAddr(10, 9, 0, 2)
	seg := make([]byte, TCPHeaderLen)
	h := TCPHeader{SrcPort: 1, DstPort: 2}
	h.Marshal(seg)
	c := ChecksumTCP(src, dst, seg)
	seg[16], seg[17] = byte(c>>8), byte(c)
	if VerifyTCP(src, IPAddr(10, 9, 0, 3), seg) {
		t.Error("segment verified against wrong destination address")
	}
}

func TestUDPChecksumNeverZero(t *testing.T) {
	// Find-free check: ChecksumUDP must map a computed 0 to 0xFFFF; at
	// minimum it never returns 0 for a sample of inputs.
	dg := make([]byte, UDPHeaderLen+3)
	h := UDPHeader{SrcPort: 0, DstPort: 0, Len: uint16(len(dg))}
	h.Marshal(dg)
	if ChecksumUDP(0, 0, dg) == 0 {
		t.Error("UDP checksum returned 0")
	}
}

func TestICMPChecksumRoundTrip(t *testing.T) {
	msg := make([]byte, ICMPHeaderLen+10)
	h := ICMPHeader{Type: ICMPEcho, ID: 7, Seq: 3}
	h.Marshal(msg)
	copy(msg[ICMPHeaderLen:], "ping-data!")
	c := ChecksumICMP(msg)
	msg[2], msg[3] = byte(c>>8), byte(c)
	if !VerifyChecksum(msg) {
		t.Error("checksummed ICMP message does not verify")
	}
}

func TestCRC32DetectsCorruption(t *testing.T) {
	data := bytes.Repeat([]byte{0xA5, 0x5A}, 100)
	c := CRC32(data)
	data[17] ^= 0x01
	if CRC32(data) == c {
		t.Error("CRC unchanged after corruption")
	}
}

func TestNodeIPRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		ip := NodeIP(NodeID(n))
		back, ok := IPNode(ip)
		return ok && back == NodeID(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, ok := IPNode(IPAddr(192, 168, 0, 1)); ok {
		t.Error("foreign address mapped to a node")
	}
}

func TestFormatIP(t *testing.T) {
	if got := FormatIP(IPAddr(10, 9, 1, 2)); got != "10.9.1.2" {
		t.Errorf("FormatIP = %q", got)
	}
}

func TestMailboxAddrString(t *testing.T) {
	a := MailboxAddr{Node: 3, Box: 12}
	if a.String() != "3:12" {
		t.Errorf("String = %q", a.String())
	}
}
