package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// NodeID identifies a host/CAB pair on the Nectar network. Node IDs are
// assigned by the cluster builder and double as HUB routing-table keys.
type NodeID uint16

// MailboxID is the per-node identifier of a mailbox; together with a NodeID
// it forms the network-wide mailbox address of paper §3.3.
type MailboxID uint16

// MailboxAddr is a network-wide mailbox address.
type MailboxAddr struct {
	Node NodeID
	Box  MailboxID
}

func (a MailboxAddr) String() string { return fmt.Sprintf("%d:%d", a.Node, a.Box) }

// Frame type values carried in the datalink header's Type field.
const (
	TypeDatagram uint8 = 1 // Nectar unreliable datagram transport
	TypeRMP      uint8 = 2 // Nectar reliable message protocol (stop-and-wait)
	TypeRRP      uint8 = 3 // Nectar request-response protocol
	TypeIP       uint8 = 4 // encapsulated IPv4 (CAB-resident stack)
	TypeRaw      uint8 = 5 // raw packets for the network-device level (§5.1)
)

// frameMagic marks the start of a datalink header.
const frameMagic = 0x9C

// DatalinkHeaderLen is the size of the fixed datalink header.
const DatalinkHeaderLen = 8

// CRCLen is the size of the hardware CRC-32 frame trailer.
const CRCLen = 4

// MaxPayload is the largest datalink payload (transport header + user
// data). It comfortably covers the paper's 8 KB experiments plus headers.
const MaxPayload = 16 << 10

// DatalinkHeader is the fixed frame header that follows the source route
// on the fiber. The hardware appends a CRC-32 trailer over header+payload.
type DatalinkHeader struct {
	Type uint8  // payload protocol (Type* constants)
	Len  uint16 // payload length in bytes
	Src  NodeID // originating node
	Dst  NodeID // destination node
}

// Marshal writes the header into b[:DatalinkHeaderLen].
func (h *DatalinkHeader) Marshal(b []byte) {
	_ = b[DatalinkHeaderLen-1]
	b[0] = frameMagic
	b[1] = h.Type
	binary.BigEndian.PutUint16(b[2:], h.Len)
	binary.BigEndian.PutUint16(b[4:], uint16(h.Src))
	binary.BigEndian.PutUint16(b[6:], uint16(h.Dst))
}

// Unmarshal parses the header from b.
func (h *DatalinkHeader) Unmarshal(b []byte) error {
	if len(b) < DatalinkHeaderLen {
		return fmt.Errorf("wire: datalink header truncated: %d bytes", len(b))
	}
	if b[0] != frameMagic {
		return fmt.Errorf("wire: bad frame magic %#x", b[0])
	}
	h.Type = b[1]
	h.Len = binary.BigEndian.Uint16(b[2:])
	h.Src = NodeID(binary.BigEndian.Uint16(b[4:]))
	h.Dst = NodeID(binary.BigEndian.Uint16(b[6:]))
	return nil
}

// CRC32 is the frame CRC computed by the CAB's checksum hardware (paper
// §2.2: "Cyclic Redundancy Checksums for incoming and outgoing data are
// computed by hardware").
func CRC32(data []byte) uint32 {
	return crc32.ChecksumIEEE(data)
}

// --- Nectar transport headers (our concrete encodings of the paper's
// datagram, reliable message, and request-response protocols, §4) ---

// NectarHeaderLen is the size of the common Nectar transport header.
const NectarHeaderLen = 16

// Nectar transport flag bits.
const (
	FlagData  uint8 = 1 << 0 // RMP: data packet; RRP: request
	FlagAck   uint8 = 1 << 1 // RMP: acknowledgment; RRP: reply
	FlagReply uint8 = 1 << 2 // RRP: reply carrying data
)

// NectarHeader is the common header of the three Nectar-specific transport
// protocols. Seq carries the RMP sequence number or the RRP transaction ID.
type NectarHeader struct {
	DstBox MailboxID // destination mailbox on the destination node
	SrcBox MailboxID // reply mailbox on the source node
	Seq    uint32    // RMP sequence number / RRP transaction id
	Flags  uint8
	Window uint8  // RMP: receiver buffer credit (extension; 0 = stop-and-wait)
	Len    uint16 // user payload length
	// 4 bytes reserved/padding to keep the header word-aligned.
}

// Marshal writes the header into b[:NectarHeaderLen].
func (h *NectarHeader) Marshal(b []byte) {
	_ = b[NectarHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:], uint16(h.DstBox))
	binary.BigEndian.PutUint16(b[2:], uint16(h.SrcBox))
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	b[8] = h.Flags
	b[9] = h.Window
	binary.BigEndian.PutUint16(b[10:], h.Len)
	b[12], b[13], b[14], b[15] = 0, 0, 0, 0
}

// Unmarshal parses the header from b.
func (h *NectarHeader) Unmarshal(b []byte) error {
	if len(b) < NectarHeaderLen {
		return fmt.Errorf("wire: nectar header truncated: %d bytes", len(b))
	}
	h.DstBox = MailboxID(binary.BigEndian.Uint16(b[0:]))
	h.SrcBox = MailboxID(binary.BigEndian.Uint16(b[2:]))
	h.Seq = binary.BigEndian.Uint32(b[4:])
	h.Flags = b[8]
	h.Window = b[9]
	h.Len = binary.BigEndian.Uint16(b[10:])
	return nil
}

// --- IPv4 ---

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 fragmentation flag bits (in the FlagsFrag field's top bits).
const (
	IPFlagDF  = 0x4000 // don't fragment
	IPFlagMF  = 0x2000 // more fragments
	IPOffMask = 0x1fff
)

// IPv4Header is a standard IPv4 header (no options).
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint16 // DF/MF bits as in IPFlag*
	FragOff  uint16 // fragment offset in 8-byte units
	TTL      uint8
	Protocol uint8
	Checksum uint16 // filled by Marshal when zero; validated by Unmarshal callers
	Src, Dst uint32
}

// Marshal writes the header into b[:IPv4HeaderLen] and computes the header
// checksum.
func (h *IPv4Header) Marshal(b []byte) {
	_ = b[IPv4HeaderLen-1]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], h.Flags|(h.FragOff&IPOffMask))
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:], h.Src)
	binary.BigEndian.PutUint32(b[16:], h.Dst)
	h.Checksum = Checksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:], h.Checksum)
}

// Unmarshal parses the header from b. It does not verify the checksum;
// use VerifyChecksum(b[:IPv4HeaderLen]) for that (the paper's IP performs
// this sanity check in the start-of-data upcall).
func (h *IPv4Header) Unmarshal(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return fmt.Errorf("wire: IPv4 header truncated: %d bytes", len(b))
	}
	if b[0]>>4 != 4 {
		return fmt.Errorf("wire: IP version %d, want 4", b[0]>>4)
	}
	if ihl := int(b[0]&0xf) * 4; ihl != IPv4HeaderLen {
		return fmt.Errorf("wire: IP options unsupported (IHL %d)", ihl)
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	ff := binary.BigEndian.Uint16(b[6:])
	h.Flags = ff &^ IPOffMask
	h.FragOff = ff & IPOffMask
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:])
	h.Src = binary.BigEndian.Uint32(b[12:])
	h.Dst = binary.BigEndian.Uint32(b[16:])
	return nil
}

// --- UDP ---

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDPHeader is a standard UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Len              uint16 // header + payload
	Checksum         uint16
}

// Marshal writes the header into b[:UDPHeaderLen] with Checksum as given
// (zero means "not computed", as UDP permits).
func (h *UDPHeader) Marshal(b []byte) {
	_ = b[UDPHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint16(b[4:], h.Len)
	binary.BigEndian.PutUint16(b[6:], h.Checksum)
}

// Unmarshal parses the header from b.
func (h *UDPHeader) Unmarshal(b []byte) error {
	if len(b) < UDPHeaderLen {
		return fmt.Errorf("wire: UDP header truncated: %d bytes", len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:])
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	h.Len = binary.BigEndian.Uint16(b[4:])
	h.Checksum = binary.BigEndian.Uint16(b[6:])
	return nil
}

// --- TCP ---

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
)

// TCPHeader is a standard TCP header (no options).
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// Marshal writes the header into b[:TCPHeaderLen] with Checksum as given.
// TCP checksum computation spans the pseudo-header and payload, so the
// caller computes it (see ChecksumTCP) and re-marshals or patches b[16:18].
func (h *TCPHeader) Marshal(b []byte) {
	_ = b[TCPHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	b[12] = (TCPHeaderLen / 4) << 4 // data offset
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:], h.Window)
	binary.BigEndian.PutUint16(b[16:], h.Checksum)
	binary.BigEndian.PutUint16(b[18:], h.Urgent)
}

// Unmarshal parses the header from b.
func (h *TCPHeader) Unmarshal(b []byte) error {
	if len(b) < TCPHeaderLen {
		return fmt.Errorf("wire: TCP header truncated: %d bytes", len(b))
	}
	if off := int(b[12]>>4) * 4; off != TCPHeaderLen {
		return fmt.Errorf("wire: TCP options unsupported (offset %d)", off)
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:])
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	h.Seq = binary.BigEndian.Uint32(b[4:])
	h.Ack = binary.BigEndian.Uint32(b[8:])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:])
	h.Checksum = binary.BigEndian.Uint16(b[16:])
	h.Urgent = binary.BigEndian.Uint16(b[18:])
	return nil
}

// ChecksumTCP computes the TCP checksum over the pseudo-header and the
// segment (header + payload) in seg, with the checksum field treated as
// zero. The caller patches the result into seg[16:18].
func ChecksumTCP(src, dst uint32, seg []byte) uint16 {
	sum := PseudoHeaderSum(src, dst, ProtoTCP, len(seg))
	sum = SumWords(sum, seg[:16])
	// Skip the checksum field itself.
	sum = SumWords(sum, seg[18:])
	return FinishChecksum(sum)
}

// VerifyTCP reports whether the segment's checksum is valid.
func VerifyTCP(src, dst uint32, seg []byte) bool {
	sum := PseudoHeaderSum(src, dst, ProtoTCP, len(seg))
	sum = SumWords(sum, seg)
	return FinishChecksum(sum) == 0
}

// ChecksumUDP computes the UDP checksum over the pseudo-header and the
// datagram (header + payload) in dg, with the checksum field treated as
// zero. Per RFC 768, a computed zero is transmitted as 0xFFFF.
func ChecksumUDP(src, dst uint32, dg []byte) uint16 {
	sum := PseudoHeaderSum(src, dst, ProtoUDP, len(dg))
	sum = SumWords(sum, dg[:6])
	sum = SumWords(sum, dg[8:])
	c := FinishChecksum(sum)
	if c == 0 {
		c = 0xFFFF
	}
	return c
}

// --- ICMP ---

// ICMPHeaderLen is the length of the ICMP echo header.
const ICMPHeaderLen = 8

// ICMP message types used here.
const (
	ICMPEchoReply   uint8 = 0
	ICMPUnreachable uint8 = 3
	ICMPEcho        uint8 = 8
)

// ICMPHeader is an ICMP header for echo/unreachable messages.
type ICMPHeader struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID       uint16 // echo identifier (unused for unreachable)
	Seq      uint16 // echo sequence (unused for unreachable)
}

// Marshal writes the header into b[:ICMPHeaderLen]. If msg covers the full
// ICMP message (header + payload), call ChecksumICMP afterwards to patch
// bytes 2:4.
func (h *ICMPHeader) Marshal(b []byte) {
	_ = b[ICMPHeaderLen-1]
	b[0] = h.Type
	b[1] = h.Code
	binary.BigEndian.PutUint16(b[2:], h.Checksum)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], h.Seq)
}

// Unmarshal parses the header from b.
func (h *ICMPHeader) Unmarshal(b []byte) error {
	if len(b) < ICMPHeaderLen {
		return fmt.Errorf("wire: ICMP header truncated: %d bytes", len(b))
	}
	h.Type = b[0]
	h.Code = b[1]
	h.Checksum = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	h.Seq = binary.BigEndian.Uint16(b[6:])
	return nil
}

// ChecksumICMP computes the ICMP checksum over msg (header + payload) with
// the checksum field treated as zero.
func ChecksumICMP(msg []byte) uint16 {
	sum := SumWords(0, msg[:2])
	sum = SumWords(sum, msg[4:])
	return FinishChecksum(sum)
}

// --- IP address helpers ---

// IPAddr packs a.b.c.d into a uint32.
func IPAddr(a, b, c, d uint8) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// NodeIP maps a NodeID to its IP address in the simulated 10.9.0.0/16
// Nectar subnet, mirroring the paper's one-CAB-per-host addressing.
func NodeIP(n NodeID) uint32 {
	return IPAddr(10, 9, uint8(n>>8), uint8(n))
}

// IPNode is the inverse of NodeIP; ok is false for addresses outside the
// Nectar subnet.
func IPNode(ip uint32) (NodeID, bool) {
	if ip>>16 != uint32(10)<<8|9 {
		return 0, false
	}
	return NodeID(ip & 0xffff), true
}

// FormatIP renders an IP address in dotted quad form.
func FormatIP(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
