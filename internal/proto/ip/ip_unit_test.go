package ip

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGatherRangeBasic(t *testing.T) {
	payload := [][]byte{[]byte("abc"), []byte("defgh"), []byte("ij")}
	cases := []struct {
		off, n int
		want   string
	}{
		{0, 10, "abcdefghij"},
		{0, 3, "abc"},
		{1, 3, "bcd"},
		{3, 5, "defgh"},
		{4, 4, "efgh"},
		{7, 3, "hij"},
		{9, 1, "j"},
		{0, 0, ""},
	}
	for _, c := range cases {
		got := flatten(gatherRange(nil, payload, c.off, c.n))
		if string(got) != c.want {
			t.Errorf("gatherRange(off=%d,n=%d) = %q, want %q", c.off, c.n, got, c.want)
		}
	}
}

func flatten(spans [][]byte) []byte {
	var out []byte
	for _, s := range spans {
		out = append(out, s...)
	}
	return out
}

// Property: gathering [off, off+n) of arbitrary spans equals slicing the
// concatenation.
func TestGatherRangeProperty(t *testing.T) {
	f := func(a, b, c []byte, offRaw, nRaw uint16) bool {
		payload := [][]byte{a, b, c}
		whole := flatten(payload)
		if len(whole) == 0 {
			return true
		}
		off := int(offRaw) % len(whole)
		n := int(nRaw) % (len(whole) - off + 1)
		got := flatten(gatherRange(nil, payload, off, n))
		return bytes.Equal(got, whole[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: gather never copies — every output span aliases an input span.
func TestGatherRangeAliases(t *testing.T) {
	a := []byte("0123456789")
	spans := gatherRange(nil, [][]byte{a}, 2, 5)
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	spans[0][0] = 'X'
	if a[2] != 'X' {
		t.Error("gatherRange copied instead of aliasing")
	}
}

func TestSetMTUValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tiny MTU accepted")
		}
	}()
	var l Layer
	l.SetMTU(10)
}
