// Package ip implements the Internet Protocol on the CAB as described in
// paper §4.1: input processing is performed at interrupt time; the
// datalink layer DMAs arriving packets into the IP input mailbox; the
// start-of-data upcall sanity-checks the IP header (including the real
// header checksum) while the rest of the packet streams in; the
// end-of-data upcall queues fragments for reassembly and transfers
// complete datagrams to the input mailbox of the appropriate higher-level
// protocol with the copy-free Enqueue operation.
//
// The send interface is the paper's IP_Output: higher protocols pass a
// header template with a partially filled-in IP header plus references to
// the data they wish to send; IP fills in the remaining fields and calls
// the datalink layer, gathering the spans without copying.
package ip

import (
	"fmt"

	"nectar/internal/obs"
	"nectar/internal/pool"
	"nectar/internal/proto/datalink"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// DefaultMTU is the IP MTU over the Nectar datalink. The fiber frame
// carries up to wire.MaxPayload, so the MTU is large — IP on Nectar does
// not fragment the paper's 8 KB experiment messages. Tests lower it with
// SetMTU to exercise fragmentation and reassembly.
const DefaultMTU = wire.MaxPayload

// ReassemblyTimeout discards incomplete fragment sets (RFC 791 suggests
// 15-120 s; the low-latency LAN uses the low end).
const ReassemblyTimeout = 15 * sim.Second

// DefaultTTL is the initial time-to-live of locally originated datagrams.
const DefaultTTL = 30

// Upper is a protocol above IP. Complete datagrams (IP header included,
// options-free) are enqueued to its input mailbox; Msg.Tag is unused here.
// An upper may instead attach a mailbox upcall to its input mailbox, as
// the paper's ICMP does (§4.1).
type Upper interface {
	InputMailbox() *mailbox.Mailbox
}

// Layer is the IP instance on one CAB.
type Layer struct {
	dl    *datalink.Layer
	rt    *mailbox.Runtime
	inBox *mailbox.Mailbox
	mtu   int

	uppers      map[uint8]Upper
	reasm       map[reasmKey]*reasmState
	nextID      uint16
	unreachable func(ctx exec.Context, h wire.IPv4Header, datagram []byte)

	// Stats.
	inDelivers, inFragments, reassembled, reasmTimeouts uint64
	badHeader, badChecksum, noProto, ttlExceeded        uint64
	outPackets, outFragments                            uint64

	// Per-send scratch recycling: header marshal buffers and gather-span
	// slices are dead as soon as dl.Send returns (the CAB copies spans
	// into the frame synchronously), so Output reuses them instead of
	// allocating per packet. Free lists rather than single buffers
	// because Compute yields virtual time, so several sends can be
	// in flight on one CAB.
	hdrFree  pool.FreeList[[]byte]
	spanFree pool.FreeList[[][]byte]

	obs  *obs.Observer
	node int
}

type reasmKey struct {
	src, dst uint32
	id       uint16
	proto    uint8
}

type reasmState struct {
	frags []*mailbox.Msg // each holds a full IP packet (header + partial payload)
	timer sim.Timer
}

// NewLayer installs IP on a CAB and registers it with the datalink layer.
func NewLayer(dl *datalink.Layer, rt *mailbox.Runtime) *Layer {
	l := &Layer{
		dl:     dl,
		rt:     rt,
		inBox:  rt.Create("ip.in"),
		mtu:    DefaultMTU,
		uppers: make(map[uint8]Upper),
		reasm:  make(map[reasmKey]*reasmState),
	}
	dl.Register(wire.TypeIP, l)
	l.node = int(rt.CAB().Node())
	l.obs = obs.Ensure(rt.CAB().Kernel())
	m := l.obs.Metrics()
	scope := fmt.Sprintf("cab%d", l.node)
	for _, g := range []struct {
		name string
		v    *uint64
	}{
		{"in_delivers", &l.inDelivers}, {"in_fragments", &l.inFragments},
		{"reassembled", &l.reassembled}, {"reasm_timeouts", &l.reasmTimeouts},
		{"bad_header", &l.badHeader}, {"bad_checksum", &l.badChecksum},
		{"no_proto", &l.noProto}, {"out_packets", &l.outPackets},
		{"out_fragments", &l.outFragments},
	} {
		v := g.v
		m.Gauge(obs.LayerIP, g.name, scope, func() uint64 { return *v })
	}
	return l
}

// Register binds an upper protocol to an IP protocol number.
func (l *Layer) Register(proto uint8, u Upper) { l.uppers[proto] = u }

// OnUnreachable registers the hook invoked when a datagram arrives for an
// unbound protocol number (ICMP uses it to send destination-unreachable).
func (l *Layer) OnUnreachable(fn func(ctx exec.Context, h wire.IPv4Header, datagram []byte)) {
	l.unreachable = fn
}

// SetMTU overrides the MTU (tests use this to force fragmentation).
func (l *Layer) SetMTU(mtu int) {
	if mtu < wire.IPv4HeaderLen+8 {
		panic("ip: MTU too small")
	}
	l.mtu = mtu
}

// Addr returns this node's IP address.
func (l *Layer) Addr() uint32 { return wire.NodeIP(l.rt.CAB().Node()) }

// Runtime returns the mailbox runtime (for upper layers).
func (l *Layer) Runtime() *mailbox.Runtime { return l.rt }

// Output is the paper's IP_Output: tpl is a header template with
// Protocol, Src (0 = this node) and Dst filled in by the caller; IP fills
// in the remaining fields (length, ID, TTL, checksum), fragments if
// needed, and hands the frame(s) to the datalink layer. The payload spans
// are gathered without copying.
func (l *Layer) Output(ctx exec.Context, tpl wire.IPv4Header, payload ...[]byte) error {
	cost := ctx.Cost()
	ctx.Compute(cost.IPOutput)
	if tpl.Src == 0 {
		tpl.Src = l.Addr()
	}
	if tpl.TTL == 0 {
		tpl.TTL = DefaultTTL
	}
	node, ok := wire.IPNode(tpl.Dst)
	if !ok {
		return fmt.Errorf("ip: %s is not on the Nectar network", wire.FormatIP(tpl.Dst))
	}
	n := 0
	for _, p := range payload {
		n += len(p)
	}
	l.nextID++
	tpl.ID = l.nextID

	if wire.IPv4HeaderLen+n <= l.mtu {
		tpl.TotalLen = uint16(wire.IPv4HeaderLen + n)
		tpl.Flags &= uint16(wire.IPFlagDF) // clear MF, offset
		tpl.FragOff = 0
		hdr := l.getHdr()
		ctx.Compute(cost.IPHeaderChecksum)
		tpl.Marshal(hdr)
		l.outPackets++
		if l.obs.Tracing() {
			l.obs.InstantSeq(l.node, obs.LayerIP, "output", uint64(tpl.ID), n)
		}
		spans := append(l.getSpans(), hdr)
		spans = append(spans, payload...)
		err := l.dl.Send(ctx, wire.TypeIP, node, spans...)
		l.putSpans(spans)
		l.putHdr(hdr)
		return err
	}

	// Fragmentation: split the payload into MTU-sized pieces on 8-byte
	// boundaries (RFC 791).
	if tpl.Flags&uint16(wire.IPFlagDF) != 0 {
		return fmt.Errorf("ip: datagram of %d bytes needs fragmentation but DF is set", n)
	}
	maxData := (l.mtu - wire.IPv4HeaderLen) &^ 7
	for off := 0; off < n; off += maxData {
		end := off + maxData
		last := false
		if end >= n {
			end = n
			last = true
		}
		fh := tpl
		fh.TotalLen = uint16(wire.IPv4HeaderLen + end - off)
		fh.FragOff = uint16(off / 8)
		if !last {
			fh.Flags = uint16(wire.IPFlagMF)
		} else {
			fh.Flags = 0
		}
		hdr := l.getHdr()
		ctx.Compute(cost.IPHeaderChecksum)
		fh.Marshal(hdr)
		l.outPackets++
		l.outFragments++
		if l.obs.Tracing() {
			l.obs.InstantSeq(l.node, obs.LayerIP, "output.frag", uint64(tpl.ID), end-off)
		}
		spans := gatherRange(append(l.getSpans(), hdr), payload, off, end-off)
		err := l.dl.Send(ctx, wire.TypeIP, node, spans...)
		l.putSpans(spans)
		l.putHdr(hdr)
		if err != nil {
			return err
		}
	}
	return nil
}

// getHdr returns a header marshal buffer from the free list.
func (l *Layer) getHdr() []byte {
	if h, ok := l.hdrFree.Get(); ok {
		return h
	}
	return make([]byte, wire.IPv4HeaderLen)
}

// putHdr returns a header marshal buffer to the free list.
//
//nectar:takes-ownership h pooled immediately
func (l *Layer) putHdr(h []byte) { l.hdrFree.Put(h) }

// getSpans returns an empty gather-span slice from the free list.
func (l *Layer) getSpans() [][]byte {
	if s, ok := l.spanFree.Get(); ok {
		return s[:0]
	}
	return make([][]byte, 0, 4)
}

// putSpans returns a gather-span slice to the free list, dropping payload
// references first so pooled spans do not pin dead buffers.
//
//nectar:takes-ownership s pooled after clearing its payload references
func (l *Layer) putSpans(s [][]byte) {
	for i := range s {
		s[i] = nil // drop payload references while pooled
	}
	l.spanFree.Put(s)
}

// gatherRange appends the sub-spans of payload covering [off, off+n) to out.
func gatherRange(out [][]byte, payload [][]byte, off, n int) [][]byte {
	for _, p := range payload {
		if n == 0 {
			break
		}
		if off >= len(p) {
			off -= len(p)
			continue
		}
		take := len(p) - off
		if take > n {
			take = n
		}
		out = append(out, p[off:off+take])
		off = 0
		n -= take
	}
	return out
}

// --- datalink.Protocol ---

// InputMailbox implements datalink.Protocol.
func (l *Layer) InputMailbox() *mailbox.Mailbox { return l.inBox }

// StartOfData implements datalink.Protocol: the paper's IP uses this
// upcall "to perform a sanity check of the IP header (including
// computation of the IP header checksum)" while the remainder of the
// packet is being received.
func (l *Layer) StartOfData(t *threads.Thread, src wire.NodeID, hdr []byte) bool {
	cost := t.Cost()
	t.Compute(cost.IPInput / 2)
	if len(hdr) < wire.IPv4HeaderLen {
		l.badHeader++
		return false
	}
	var h wire.IPv4Header
	if err := h.Unmarshal(hdr); err != nil {
		l.badHeader++
		return false
	}
	t.Compute(cost.IPHeaderChecksum)
	if !wire.VerifyChecksum(hdr[:wire.IPv4HeaderLen]) {
		l.badChecksum++
		return false
	}
	if int(h.TotalLen) != len(hdr) {
		l.badHeader++
		return false
	}
	return true
}

// EndOfData implements datalink.Protocol: queue fragments for reassembly;
// transfer complete datagrams to the appropriate higher protocol's input
// mailbox using Enqueue, "so no data is copied".
func (l *Layer) EndOfData(t *threads.Thread, src wire.NodeID, m *mailbox.Msg) {
	ctx := exec.OnCAB(t)
	t.Compute(t.Cost().IPInput / 2)
	var h wire.IPv4Header
	if err := h.Unmarshal(m.Data()); err != nil {
		l.badHeader++
		l.inBox.AbortPut(ctx, m)
		return
	}
	if h.Flags&uint16(wire.IPFlagMF) != 0 || h.FragOff != 0 {
		l.inFragments++
		if l.obs.Tracing() {
			l.obs.InstantSeq(l.node, obs.LayerIP, "frag.in", uint64(h.ID), m.Len())
		}
		l.addFragment(ctx, h, m)
		return
	}
	l.deliver(ctx, h, m)
}

// deliver hands a complete datagram (IP header included) to its protocol.
func (l *Layer) deliver(ctx exec.Context, h wire.IPv4Header, m *mailbox.Msg) {
	u, ok := l.uppers[h.Protocol]
	if !ok {
		l.noProto++
		if l.unreachable != nil {
			l.unreachable(ctx, h, m.Data())
		}
		l.inBox.AbortPut(ctx, m)
		return
	}
	l.inDelivers++
	if l.obs.Tracing() {
		l.obs.InstantSeq(l.node, obs.LayerIP, "deliver", uint64(h.ID), m.Len())
	}
	owner := l.boxOf(m)
	owner.Enqueue(ctx, m, u.InputMailbox())
}

// boxOf returns the mailbox whose reservation currently holds m. All IP
// input messages are reserved in the IP input mailbox.
func (l *Layer) boxOf(*mailbox.Msg) *mailbox.Mailbox { return l.inBox }

// addFragment stores one fragment and reassembles when complete.
func (l *Layer) addFragment(ctx exec.Context, h wire.IPv4Header, m *mailbox.Msg) {
	key := reasmKey{src: h.Src, dst: h.Dst, id: h.ID, proto: h.Protocol}
	st, ok := l.reasm[key]
	if !ok {
		st = &reasmState{}
		l.reasm[key] = st
		k := l.rt.CAB().Kernel()
		st.timer = k.After(ReassemblyTimeout, func() {
			l.rt.CAB().Sched.RaiseInterrupt("ip-reasm-timeout", func(t *threads.Thread) {
				l.expire(exec.OnCAB(t), key)
			})
		})
	}
	st.frags = append(st.frags, m)

	// Completeness check: do the fragments tile [0, total) with a final
	// MF=0 fragment present?
	total := -1
	covered := 0
	for _, fm := range st.frags {
		var fh wire.IPv4Header
		_ = fh.Unmarshal(fm.Data())
		dataLen := int(fh.TotalLen) - wire.IPv4HeaderLen
		covered += dataLen
		if fh.Flags&uint16(wire.IPFlagMF) == 0 {
			total = int(fh.FragOff)*8 + dataLen
		}
	}
	if total < 0 || covered < total {
		return
	}
	l.reassemble(ctx, key, st, h, total)
}

// reassemble builds the complete datagram in a fresh buffer and delivers
// it. (The real stack chains buffers; a contiguous copy is charged at the
// CAB's memory-copy rate — reassembly is off the paper's fast path.)
func (l *Layer) reassemble(ctx exec.Context, key reasmKey, st *reasmState, last wire.IPv4Header, total int) {
	st.timer.Stop()
	delete(l.reasm, key)

	full := l.inBox.BeginPutNB(ctx, wire.IPv4HeaderLen+total)
	if full == nil {
		// No buffer: drop the whole set.
		for _, fm := range st.frags {
			l.inBox.AbortPut(ctx, fm)
		}
		return
	}
	seen := make([]bool, total) // duplicate-range guard
	for _, fm := range st.frags {
		var fh wire.IPv4Header
		_ = fh.Unmarshal(fm.Data())
		off := int(fh.FragOff) * 8
		data := fm.Data()[wire.IPv4HeaderLen:]
		ctx.Compute(ctx.Cost().MemCopyTime(len(data)))
		copy(full.Data()[wire.IPv4HeaderLen+off:], data)
		for i := off; i < off+len(data) && i < total; i++ {
			seen[i] = true
		}
		l.inBox.AbortPut(ctx, fm)
	}
	for _, s := range seen {
		if !s {
			// Holes despite the length check (overlapping duplicates):
			// drop the reassembly.
			l.inBox.AbortPut(ctx, full)
			return
		}
	}
	// Rebuild the header: no fragment fields, full length.
	h := last
	h.Flags = 0
	h.FragOff = 0
	h.TotalLen = uint16(wire.IPv4HeaderLen + total)
	h.Marshal(full.Data()[:wire.IPv4HeaderLen])
	l.reassembled++
	if l.obs.Tracing() {
		l.obs.InstantSeq(l.node, obs.LayerIP, "reassembled", uint64(h.ID), total)
	}
	l.deliver(ctx, h, full)
}

// expire discards an incomplete fragment set.
func (l *Layer) expire(ctx exec.Context, key reasmKey) {
	st, ok := l.reasm[key]
	if !ok {
		return
	}
	delete(l.reasm, key)
	l.reasmTimeouts++
	for _, fm := range st.frags {
		l.inBox.AbortPut(ctx, fm)
	}
}

// Stats returns IP counters.
func (l *Layer) Stats() (delivered, fragsIn, reassembled, badCksum, noProto uint64) {
	return l.inDelivers, l.inFragments, l.reassembled, l.badChecksum, l.noProto
}
