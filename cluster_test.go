package nectar

import (
	"bytes"
	"fmt"
	"testing"

	"nectar/internal/nectarine"
	"nectar/internal/proto/nectar"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func twoNodes(t *testing.T, cfg *Config) (*Cluster, *Node, *Node) {
	t.Helper()
	cl := NewCluster(cfg)
	a := cl.AddNode()
	b := cl.AddNode()
	return cl, a, b
}

func TestClusterRouting(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	if _, ok := a.CAB.Route(b.ID); !ok {
		t.Fatal("no route a->b")
	}
	if _, ok := b.CAB.Route(a.ID); !ok {
		t.Fatal("no route b->a")
	}
	_ = cl
}

func TestMultiHubRouting(t *testing.T) {
	cl := NewCluster(nil)
	h2 := cl.AddHub()
	cl.ConnectHubs(0, h2)
	a := cl.AddNodeAt(0)
	b := cl.AddNodeAt(h2)
	route, ok := a.CAB.Route(b.ID)
	if !ok {
		t.Fatal("no inter-hub route")
	}
	if len(route) != 2 {
		t.Fatalf("route len = %d, want 2 (one inter-hub hop + final port)", len(route))
	}
	// And traffic actually flows.
	done := false
	box := b.Mailboxes.Create("sink")
	a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		_ = a.Transports.Datagram.SendDirect(ctx, wire.MailboxAddr{Node: b.ID, Box: box.ID()}, 0, []byte("hop"))
	})
	b.CAB.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := box.BeginGet(ctx)
		done = string(m.Data()) == "hop"
		box.EndGet(ctx, m)
	})
	if err := cl.RunFor(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("datagram did not cross two hubs")
	}
}

func TestDatagramCABToCAB(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	box := b.Mailboxes.Create("sink")
	var got []byte
	var from wire.MailboxAddr
	a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		err := a.Transports.Datagram.SendDirect(ctx, wire.MailboxAddr{Node: b.ID, Box: box.ID()}, 7, []byte("payload-1"))
		if err != nil {
			cl.K.Fatalf("send: %v", err)
		}
	})
	b.CAB.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := box.BeginGet(ctx)
		got = append([]byte(nil), m.Data()...)
		from = m.From
		box.EndGet(ctx, m)
	})
	if err := cl.RunFor(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload-1" {
		t.Fatalf("got %q", got)
	}
	if from.Node != a.ID || from.Box != 7 {
		t.Errorf("From = %v, want %d:7", from, a.ID)
	}
}

func TestDatagramHostToHost(t *testing.T) {
	// The paper's Figure 6 flow: host A builds a message in CAB memory,
	// the CAB datagram thread transmits it, host B polls for it.
	cl, a, b := twoNodes(t, nil)
	box := b.Mailboxes.Create("sink")
	var got []byte
	var latency sim.Duration
	a.Host.Run("sender", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.Host)
		start := th.Now()
		a.Transports.Datagram.Send(ctx, wire.MailboxAddr{Node: b.ID, Box: box.ID()}, 0, []byte{1, 2, 3, 4}, nil)
		_ = start
	})
	b.Host.Run("receiver", func(th *threads.Thread) {
		ctx := exec.OnHost(th, b.Host)
		m := box.BeginGetPoll(ctx)
		got = make([]byte, m.Len())
		m.Read(ctx, 0, got)
		box.EndGet(ctx, m)
		latency = sim.Duration(th.Now())
	})
	if err := cl.RunFor(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
	// One-way latency should be in the neighborhood of the paper's
	// 163 us (we assert a generous band; the precise calibration is
	// checked by the Figure 6 experiment test).
	if latency < 80*sim.Microsecond || latency > 400*sim.Microsecond {
		t.Errorf("one-way host-host datagram latency = %v, expected around 163us", latency)
	}
}

func TestRMPReliableDelivery(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	box := b.Mailboxes.Create("sink")
	var got []byte
	var status uint32
	a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		status = a.Transports.RMP.SendBlocking(ctx, wire.MailboxAddr{Node: b.ID, Box: box.ID()}, 0, bytes.Repeat([]byte("R"), 4096))
	})
	b.CAB.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := box.BeginGet(ctx)
		got = append([]byte(nil), m.Data()...)
		box.EndGet(ctx, m)
	})
	if err := cl.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if status != nectar.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(got) != 4096 || got[0] != 'R' {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestRMPRetransmitOnDrop(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	box := b.Mailboxes.Create("sink")
	// Drop the first transmission on the wire: RMP must retransmit.
	// The a->hub link carries the data frame.
	aOut := findLinkFrom(t, cl, a)
	aOut.DropNext(1)
	var status uint32
	var got int
	a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		status = a.Transports.RMP.SendBlocking(ctx, wire.MailboxAddr{Node: b.ID, Box: box.ID()}, 0, []byte("must-arrive"))
	})
	b.CAB.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := box.BeginGet(ctx)
		got = m.Len()
		box.EndGet(ctx, m)
	})
	if err := cl.RunFor(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if status != nectar.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if got != len("must-arrive") {
		t.Fatalf("got %d bytes", got)
	}
	_, _, retrans, _, _ := a.Transports.RMP.Stats()
	if retrans == 0 {
		t.Error("no retransmission recorded despite the drop")
	}
}

func TestRMPCorruptionDetectedByCRC(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	box := b.Mailboxes.Create("sink")
	aOut := findLinkFrom(t, cl, a)
	aOut.CorruptNext(1)
	var status uint32
	a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		status = a.Transports.RMP.SendBlocking(ctx, wire.MailboxAddr{Node: b.ID, Box: box.ID()}, 0, []byte("crc-protected"))
	})
	b.CAB.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := box.BeginGet(ctx)
		if string(m.Data()) != "crc-protected" {
			cl.K.Fatalf("corrupted data delivered: %q", m.Data())
		}
		box.EndGet(ctx, m)
	})
	if err := cl.RunFor(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if status != nectar.StatusOK {
		t.Fatalf("status = %d", status)
	}
	_, _, _, crcErr := crcStats(b)
	if crcErr == 0 {
		t.Error("receiver CAB recorded no CRC error")
	}
}

func crcStats(n *Node) (tx, rx, drops, crcErr uint64) {
	tx, rx, crcErr = n.CAB.Stats()
	return tx, rx, 0, crcErr
}

func TestRRPCallReply(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	service := b.Mailboxes.Create("service")
	replyBox := a.Mailboxes.Create("reply")
	var reply []byte
	// Server: CAB-resident task.
	b.CAB.Sched.Fork("server", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := service.BeginGet(ctx)
		req := string(m.Data())
		b.Transports.RRP.Reply(ctx, m, []byte("echo:"+req))
		service.EndGet(ctx, m)
	})
	// Client: CAB thread.
	a.CAB.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		st := a.Syncs.Alloc(ctx)
		a.Transports.RRP.Call(ctx, wire.MailboxAddr{Node: b.ID, Box: service.ID()}, []byte("ping"), replyBox, st)
		if s := st.Read(ctx); s != nectar.StatusOK {
			cl.K.Fatalf("call status %d", s)
		}
		m := replyBox.BeginGet(ctx)
		reply = append([]byte(nil), m.Data()...)
		replyBox.EndGet(ctx, m)
	})
	if err := cl.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:ping" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestRRPDuplicateSuppression(t *testing.T) {
	// Drop the reply: the client retransmits, the server's dedup cache
	// answers without re-executing the service.
	cl, a, b := twoNodes(t, nil)
	service := b.Mailboxes.Create("service")
	replyBox := a.Mailboxes.Create("reply")
	bOut := findLinkFrom(t, cl, b)
	served := 0
	b.CAB.Sched.Fork("server", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		for {
			m := service.BeginGet(ctx)
			served++
			bOut.DropNext(1) // lose this reply; force a client retransmit
			b.Transports.RRP.Reply(ctx, m, []byte("done"))
			service.EndGet(ctx, m)
		}
	})
	var ok bool
	a.CAB.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		st := a.Syncs.Alloc(ctx)
		a.Transports.RRP.Call(ctx, wire.MailboxAddr{Node: b.ID, Box: service.ID()}, []byte("work"), replyBox, st)
		if st.Read(ctx) == nectar.StatusOK {
			m := replyBox.BeginGet(ctx)
			ok = string(m.Data()) == "done"
			replyBox.EndGet(ctx, m)
		}
	})
	if err := cl.RunFor(500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("call never completed")
	}
	if served != 1 {
		t.Errorf("service executed %d times, want 1 (at-most-once)", served)
	}
	_, _, _, dedup := a.Transports.RRP.Stats()
	_ = dedup
	_, _, _, dedupB := b.Transports.RRP.Stats()
	if dedupB == 0 {
		t.Error("server recorded no dedup hit")
	}
}

func TestNectarineEndToEnd(t *testing.T) {
	// The same application code via the Nectarine API: a host client on
	// node A calls a CAB-resident echo server on node B.
	cl, a, b := twoNodes(t, nil)
	service := b.Mailboxes.Create("echo.service")
	b.API.RunOnCAB("server", func(ep *nectarine.Endpoint) {
		for {
			ep.Serve(service, func(req []byte) []byte {
				return append([]byte("srv:"), req...)
			})
		}
	})
	var got []byte
	a.API.RunOnHost("client", func(ep *nectarine.Endpoint) {
		replyBox := ep.NewMailbox("client.reply")
		out, err := ep.Call(wire.MailboxAddr{Node: b.ID, Box: service.ID()}, []byte("abc"), replyBox)
		if err != nil {
			cl.K.Fatalf("call: %v", err)
		}
		got = out
	})
	if err := cl.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if string(got) != "srv:abc" {
		t.Fatalf("got %q", got)
	}
}

func findLinkFrom(t *testing.T, cl *Cluster, n *Node) *linkHandle {
	t.Helper()
	return &linkHandle{n: n}
}

// linkHandle exposes fault injection on a node's outgoing fiber. The CAB
// does not export its link, so we inject through a tiny shim in the
// cluster for tests.
type linkHandle struct{ n *Node }

func (l *linkHandle) DropNext(k int)    { l.n.CAB.OutLink().DropNext(k) }
func (l *linkHandle) CorruptNext(k int) { l.n.CAB.OutLink().CorruptNext(k) }

func TestDeterministicCluster(t *testing.T) {
	run := func() string {
		cl, a, b := twoNodes(t, nil)
		box := b.Mailboxes.Create("sink")
		var log []string
		a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			for i := 0; i < 5; i++ {
				_ = a.Transports.Datagram.SendDirect(ctx, wire.MailboxAddr{Node: b.ID, Box: box.ID()}, 0, []byte{byte(i)})
				th.Sleep(13 * sim.Microsecond)
			}
		})
		b.CAB.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			for i := 0; i < 5; i++ {
				m := box.BeginGet(ctx)
				log = append(log, fmt.Sprintf("%d@%v", m.Data()[0], th.Now()))
				box.EndGet(ctx, m)
			}
		})
		if err := cl.RunFor(5 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(log)
	}
	if x, y := run(), run(); x != y {
		t.Fatalf("nondeterministic cluster:\n%s\n%s", x, y)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	// Node-local transport traffic loops through the HUB and back down
	// the sender's own port.
	cl, a, _ := twoNodes(t, nil)
	box := a.Mailboxes.Create("self")
	var got []byte
	a.CAB.Sched.Fork("self-talk", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		if st := a.Transports.RMP.SendBlocking(ctx, box.Addr(), 0, []byte("to myself")); st != nectar.StatusOK {
			cl.K.Fatalf("loopback send status %d", st)
		}
		m := box.BeginGet(ctx)
		got = append([]byte(nil), m.Data()...)
		box.EndGet(ctx, m)
	})
	if err := cl.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if string(got) != "to myself" {
		t.Fatalf("got %q", got)
	}
}
