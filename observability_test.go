package nectar

import (
	"bytes"
	"strings"
	"testing"

	"nectar/internal/obs"
	np "nectar/internal/proto/nectar"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// obsWorkload runs a fixed two-node exchange — datagrams plus an RMP
// send with one forced retransmission — with a trace recorder and a wire
// capture installed, and returns the rendered event stream, the metrics
// snapshot (live and as JSON), and the capture listing.
func obsWorkload(t *testing.T) (events string, snap *obs.Snapshot, snapJSON []byte, capture string) {
	t.Helper()
	cl, a, b := twoNodes(t, nil)

	o := obs.Ensure(cl.K)
	rec := &obs.Recorder{}
	o.SetSink(rec)
	tap := &obs.Capture{}
	o.SetCapture(tap)

	sink := b.Mailboxes.Create("det.sink")
	addr := wire.MailboxAddr{Node: b.ID, Box: sink.ID()}

	done := false
	b.Host.Run("rx", func(th *threads.Thread) {
		ctx := exec.OnHost(th, b.Host)
		for i := 0; i < 4; i++ { // 3 datagrams + 1 RMP message
			m := sink.BeginGet(ctx)
			sink.EndGet(ctx, m)
		}
	})
	a.Host.Run("tx", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.Host)
		for i := 0; i < 3; i++ {
			a.Transports.Datagram.Send(ctx, addr, 0, []byte{byte(i), 1, 2, 3}, nil)
		}
		a.CAB.OutLink().DropNext(1) // force one RMP retransmission
		st := a.Syncs.Alloc(ctx)
		a.Transports.RMP.Send(ctx, addr, 0, []byte("reliable"), st)
		if got := st.Read(ctx); got != np.StatusOK {
			cl.K.Fatalf("rmp status %d", got)
		}
		done = true
	})
	for !done {
		if err := cl.RunFor(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if cl.Now() > sim.Time(30*sim.Second) {
			t.Fatal("workload did not complete")
		}
	}

	var sb strings.Builder
	for _, e := range rec.Events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	snap = o.Metrics().Snapshot(cl.Now())
	return sb.String(), snap, snap.JSON(), tap.Text()
}

// TestObservabilityDeterminism runs the same workload twice in fresh
// clusters and requires byte-identical trace streams, metric snapshots,
// and wire captures — the repo's reproducibility contract extended to
// the observability layer.
func TestObservabilityDeterminism(t *testing.T) {
	ev1, _, snap1, cap1 := obsWorkload(t)
	ev2, _, snap2, cap2 := obsWorkload(t)
	if ev1 == "" || len(snap1) == 0 || cap1 == "" {
		t.Fatal("workload produced no events, metrics, or capture")
	}
	if ev1 != ev2 {
		t.Errorf("trace streams differ between identical runs; first divergence:\nrun1: %s\nrun2: %s",
			firstDiffLine(ev1, ev2), firstDiffLine(ev2, ev1))
	}
	if !bytes.Equal(snap1, snap2) {
		t.Error("metric snapshots differ between identical runs")
	}
	if cap1 != cap2 {
		t.Errorf("wire captures differ between identical runs; first divergence:\nrun1: %s\nrun2: %s",
			firstDiffLine(cap1, cap2), firstDiffLine(cap2, cap1))
	}
}

// firstDiffLine returns the first line of a that differs from b, for a
// readable failure message.
func firstDiffLine(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			return la[i]
		}
	}
	return "(streams are a prefix of each other)"
}

// TestObservabilityCoverage checks that one workload populates every
// surface the observability layer promises: trace events from host
// interface through transports, the headline metric families, and
// decoded wire frames including the injected drop.
func TestObservabilityCoverage(t *testing.T) {
	events, snap, _, capture := obsWorkload(t)

	for _, marker := range []string{"hostif", "datalink", "datagram", "rmp", "rto"} {
		if !strings.Contains(events, marker) {
			t.Errorf("trace stream missing %q events", marker)
		}
	}
	for _, m := range []struct {
		layer obs.Layer
		name  string
	}{
		{obs.LayerFiber, "bytes"},
		{obs.LayerVME, "pio_words"},
		{obs.LayerSched, "context_switches"},
		{obs.LayerMailbox, "puts"},
		{obs.LayerRMP, "retransmits"},
	} {
		if snap.Sum(m.layer, m.name) == 0 {
			t.Errorf("metric %s/%s is zero after the workload", m.layer, m.name)
		}
	}
	if !strings.Contains(capture, "datagram box") {
		t.Error("capture has no decoded datagram frame")
	}
	if !strings.Contains(capture, "rmp box") {
		t.Error("capture has no decoded rmp frame")
	}
	if !strings.Contains(capture, "[DROPPED]") {
		t.Error("capture did not flag the injected drop")
	}
}
