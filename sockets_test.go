package nectar

import (
	"bytes"
	"testing"

	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func TestSocketsHostToHost(t *testing.T) {
	// The §5.2 socket emulation: two host processes talk through the
	// familiar connect/accept/send/recv API while TCP runs on the CABs.
	cl, a, b := twoNodes(t, nil)
	lnSock, err := b.Sockets.Listen(7777)
	if err != nil {
		t.Fatal(err)
	}
	var received []byte
	serverDone := false
	b.Host.Run("server", func(th *threads.Thread) {
		ctx := exec.OnHost(th, b.Host)
		conn, err := lnSock.Accept(ctx)
		if err != nil {
			cl.K.Fatalf("accept: %v", err)
		}
		for {
			chunk := conn.Recv(ctx)
			if chunk == nil {
				break
			}
			received = append(received, chunk...)
		}
		serverDone = true
	})
	payload := bytes.Repeat([]byte("sock"), 3000) // 12 KB, forces segmentation
	a.Host.Run("client", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.Host)
		conn, err := a.Sockets.Connect(ctx, wire.NodeIP(b.ID), 7777)
		if err != nil {
			cl.K.Fatalf("connect: %v", err)
		}
		if err := conn.Send(ctx, payload); err != nil {
			cl.K.Fatalf("send: %v", err)
		}
		if err := conn.Close(ctx); err != nil {
			cl.K.Fatalf("close: %v", err)
		}
	})
	for !serverDone {
		if err := cl.RunFor(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if cl.Now() > sim.Time(10*sim.Second) {
			t.Fatal("socket transfer stalled")
		}
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("received %d bytes, want %d", len(received), len(payload))
	}
}

func TestSocketsConnectRefused(t *testing.T) {
	// With no listener, the peer answers RST and connect fails — well
	// before the SYN retransmission timeout would expire.
	cl, a, b := twoNodes(t, nil)
	var err error
	var took sim.Duration
	done := false
	a.Host.Run("client", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.Host)
		start := th.Now()
		_, err = a.Sockets.Connect(ctx, wire.NodeIP(b.ID), 9999)
		took = sim.Duration(th.Now() - start)
		done = true
	})
	for !done {
		if e := cl.RunFor(10 * sim.Millisecond); e != nil {
			t.Fatal(e)
		}
		if cl.Now() > sim.Time(10*sim.Second) {
			t.Fatal("connect never returned")
		}
	}
	if err == nil {
		t.Fatal("connect to a closed port succeeded")
	}
	if took > 10*sim.Millisecond {
		t.Errorf("refusal took %v; RST fast path not working", took)
	}
}

func TestSocketsEchoBothDirections(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	lnSock, _ := b.Sockets.Listen(80)
	b.Host.Run("server", func(th *threads.Thread) {
		ctx := exec.OnHost(th, b.Host)
		conn, err := lnSock.Accept(ctx)
		if err != nil {
			cl.K.Fatalf("accept: %v", err)
		}
		for {
			chunk := conn.Recv(ctx)
			if chunk == nil {
				return
			}
			_ = conn.Send(ctx, append([]byte("echo:"), chunk...))
		}
	})
	var got []byte
	done := false
	a.Host.Run("client", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.Host)
		conn, err := a.Sockets.Connect(ctx, wire.NodeIP(b.ID), 80)
		if err != nil {
			cl.K.Fatalf("connect: %v", err)
		}
		_ = conn.Send(ctx, []byte("round-trip"))
		got = conn.Recv(ctx)
		done = true
	})
	for !done {
		if err := cl.RunFor(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if cl.Now() > sim.Time(10*sim.Second) {
			t.Fatal("echo stalled")
		}
	}
	if string(got) != "echo:round-trip" {
		t.Fatalf("got %q", got)
	}
}

func TestSocketsFromCABTask(t *testing.T) {
	// The same API works for CAB-resident tasks (no doorbell offload).
	cl, a, b := twoNodes(t, nil)
	lnSock, _ := b.Sockets.Listen(80)
	var got []byte
	b.CAB.Sched.Fork("server", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		conn, err := lnSock.Accept(ctx)
		if err != nil {
			cl.K.Fatalf("accept: %v", err)
		}
		got = conn.Recv(ctx)
	})
	a.CAB.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		conn, err := a.Sockets.Connect(ctx, wire.NodeIP(b.ID), 80)
		if err != nil {
			cl.K.Fatalf("connect: %v", err)
		}
		_ = conn.Send(ctx, []byte("cab-side"))
	})
	if err := cl.RunFor(500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if string(got) != "cab-side" {
		t.Fatalf("got %q", got)
	}
}
