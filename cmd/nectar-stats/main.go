// Command nectar-stats runs a small two-node workload that exercises the
// datagram, RMP and TCP paths — including a forced RMP timeout and a
// forced TCP retransmission — and emits the cluster-wide metrics snapshot
// from the observability registry.
//
// Usage:
//
//	nectar-stats [-format json|table]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nectar"
	"nectar/internal/obs"
	np "nectar/internal/proto/nectar"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func main() {
	format := flag.String("format", "json", "output format: json | table")
	flag.Parse()
	switch *format {
	case "json", "table":
	default:
		log.Fatalf("unknown -format %q (want json or table)", *format)
	}

	cl := nectar.NewCluster(nil)
	a := cl.AddNode()
	b := cl.AddNode()
	c := cl.AddNode() // silent third node: target of the forced RMP timeout

	drive := func(done *bool, what string) {
		for !*done {
			if err := cl.RunFor(10 * sim.Millisecond); err != nil {
				log.Fatal(err)
			}
			if cl.Now() > sim.Time(30*sim.Second) {
				log.Fatalf("%s did not complete", what)
			}
		}
	}

	// Phase 1: host-to-host datagrams.
	const datagrams = 8
	sink := b.Mailboxes.Create("stats.sink")
	addrSink := wire.MailboxAddr{Node: b.ID, Box: sink.ID()}
	p1 := false
	b.Host.Run("dg-receiver", func(t *threads.Thread) {
		ctx := exec.OnHost(t, b.Host)
		for i := 0; i < datagrams; i++ {
			m := sink.BeginGet(ctx)
			sink.EndGet(ctx, m)
		}
		p1 = true
	})
	a.Host.Run("dg-sender", func(t *threads.Thread) {
		ctx := exec.OnHost(t, a.Host)
		for i := 0; i < datagrams; i++ {
			a.Transports.Datagram.Send(ctx, addrSink, 0, []byte{byte(i), 1, 2, 3}, nil)
		}
	})
	drive(&p1, "datagram phase")

	// Phase 2: an RMP send to a dead peer — every transmission is lost, so
	// the sender exhausts its retries and reports StatusTimeout — followed
	// by a successful send to the live receiver (a separate peer, so its
	// stop-and-wait sequence stream is unaffected by the loss).
	a.CAB.OutLink().DropNext(np.MaxRetries + 1)
	deadAddr := wire.MailboxAddr{Node: c.ID, Box: sink.ID()}
	p2 := false
	a.Host.Run("rmp-sender", func(t *threads.Thread) {
		ctx := exec.OnHost(t, a.Host)
		st := a.Syncs.Alloc(ctx)
		a.Transports.RMP.Send(ctx, deadAddr, 0, []byte("lost"), st)
		if got := st.Read(ctx); got != np.StatusTimeout {
			log.Fatalf("rmp: status %d, want timeout (%d)", got, np.StatusTimeout)
		}
		st2 := a.Syncs.Alloc(ctx)
		a.Transports.RMP.Send(ctx, addrSink, 0, []byte("ok"), st2)
		if got := st2.Read(ctx); got != np.StatusOK {
			log.Fatalf("rmp: status %d, want ok (%d)", got, np.StatusOK)
		}
		p2 = true
	})
	b.Host.Run("rmp-receiver", func(t *threads.Thread) {
		ctx := exec.OnHost(t, b.Host)
		m := sink.BeginGet(ctx)
		sink.EndGet(ctx, m)
	})
	drive(&p2, "rmp phase")

	// Phase 3: a TCP transfer with the first data segment dropped, so the
	// connection recovers by RTO retransmission.
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	p3 := false
	ln, err := b.TCP.Listen(7)
	if err != nil {
		log.Fatal(err)
	}
	b.CAB.Sched.Fork("tcp-server", threads.AppPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		c := ln.Accept(ctx)
		got := 0
		for got < len(payload) {
			m := c.Recv(ctx)
			if m == nil {
				break
			}
			got += m.Len()
			c.RecvDone(ctx, m)
		}
		c.Close(ctx)
	})
	a.CAB.Sched.Fork("tcp-client", threads.AppPriority, func(t *threads.Thread) {
		ctx := exec.OnCAB(t)
		c, err := a.TCP.Connect(ctx, b.IP.Addr(), 7)
		if err != nil {
			log.Fatal(err)
		}
		a.CAB.OutLink().DropNext(1) // lose the first data segment
		c.Send(ctx, payload)
		c.Close(ctx)
		p3 = true
	})
	drive(&p3, "tcp phase")

	if r := a.TCP.Stats().Retransmits; r == 0 {
		log.Fatal("tcp: fault injection produced no retransmission")
	}

	snap := obs.Ensure(cl.K).Metrics().Snapshot(cl.Now())
	switch *format {
	case "json":
		os.Stdout.Write(snap.JSON())
		fmt.Println()
	case "table":
		fmt.Print(snap.Table())
	}
}
