// Command nectar-vet runs the repo's determinism and hot-path analyzers
// (internal/analysis) over Go packages.
//
// Standalone:
//
//	nectar-vet ./...
//
// As a go vet tool (one unit per package, cached by the go command):
//
//	go build -o "$(go env GOPATH)/bin/nectar-vet" ./cmd/nectar-vet
//	go vet -vettool="$(which nectar-vet)" ./...
//
// Exit status: 0 clean, 1 driver error, 2 diagnostics reported.
package main

import (
	"os"

	"nectar/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:]))
}
