// Command nectar-vet runs the repo's determinism and hot-path analyzers
// (internal/analysis) over Go packages.
//
// Standalone (whole-program: interprocedural analyzers see the full
// call graph):
//
//	nectar-vet ./...
//	nectar-vet -json ./...
//
// As a go vet tool (one unit per package, cached by the go command;
// interprocedural analyzers degrade to per-package view):
//
//	go build -o "$(go env GOPATH)/bin/nectar-vet" ./cmd/nectar-vet
//	go vet -vettool="$(which nectar-vet)" ./...
//	go vet -vettool="$(which nectar-vet)" -json ./...
//
// With -json, findings go to stdout as one JSON object per line
// ({"pos","analyzer","message","chain"}); without it they go to stderr
// as file:line:col: analyzer: message. The chain field is populated by
// hotprop with the call path from the //nectar:hotpath root to the
// offending function.
//
// Exit status: 0 clean, 1 driver error, 2 diagnostics reported.
package main

import (
	"os"

	"nectar/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:]))
}
