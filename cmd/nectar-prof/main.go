// Command nectar-prof renders and validates the wall-clock profile the
// sharded pdes experiment collects: the scheduler phase breakdown
// (choose / barrier / inline compute / drain), per-shard utilization
// with the spin-vs-park wait split, window-size and lookahead
// histograms, and a per-shard busy timeline — the Figure-6-style view
// of where real time went.
//
// Usage:
//
//	nectar-prof [-shards N] [-topn N] [-json]        fresh profiled run
//	nectar-prof -in BENCH_pdes.json [-topn N]        render a saved profile
//	nectar-prof -check BENCH_pdes.json [-min 0.95]   validate a saved profile
//
// -check exits nonzero when the profile is missing or fails its internal
// consistency rules (phase times must tile the wall clock to at least
// -min, event counts must reconcile); CI's profile-smoke job runs it
// against the artifact nectar-bench -prof wrote.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nectar/internal/bench"
	"nectar/internal/model"
	"nectar/internal/prof"
)

var (
	shardsFlag = flag.Int("shards", 2, "shard kernels for the fresh profiled run (clamped to [2,8])")
	topnFlag   = flag.Int("topn", 0, "limit per-shard breakdown rows to the N busiest shards (0 = all)")
	jsonFlag   = flag.Bool("json", false, "emit the profile report as JSON instead of text")
	inFlag     = flag.String("in", "", "render the profile section of a saved BENCH_pdes.json instead of running")
	checkFlag  = flag.String("check", "", "validate the profile section of a saved BENCH_pdes.json and exit")
	minFlag    = flag.Float64("min", 0.95, "minimum accounted wall-clock fraction -check accepts")
)

func main() {
	flag.Parse()
	if *inFlag != "" && *checkFlag != "" {
		fmt.Fprintln(os.Stderr, "nectar-prof: -in and -check are mutually exclusive")
		os.Exit(2)
	}

	var r *prof.Report
	switch {
	case *checkFlag != "":
		r = load(*checkFlag)
		if err := r.Check(*minFlag); err != nil {
			fmt.Fprintf(os.Stderr, "nectar-prof: %s: %v\n", *checkFlag, err)
			os.Exit(1)
		}
		fmt.Printf("%s: profile ok: %.1f%% of %.3fs wall accounted across %d shards, %d windows\n",
			*checkFlag, 100*r.AccountedFraction, r.WallSeconds, r.Shards, r.Windows)
		return
	case *inFlag != "":
		r = load(*inFlag)
	default:
		var err error
		r, err = bench.PdesProfile(model.Default1990(), *shardsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nectar-prof: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonFlag {
		os.Stdout.Write(r.JSON())
		fmt.Println()
		return
	}
	fmt.Print(r.Format(*topnFlag))
}

// load reads a BENCH_pdes.json report and returns its profile section,
// exiting with a diagnostic when the file is unreadable or unprofiled.
func load(path string) *prof.Report {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nectar-prof: %v\n", err)
		os.Exit(1)
	}
	var rep bench.PdesReport
	if err := json.Unmarshal(b, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "nectar-prof: %s: %v\n", path, err)
		os.Exit(1)
	}
	if rep.Profile == nil {
		fmt.Fprintf(os.Stderr, "nectar-prof: %s has no profile section (run nectar-bench -prof pdes)\n", path)
		os.Exit(1)
	}
	return rep.Profile
}
