// Command nectar-sim builds a Nectar installation from flags, drives an
// all-pairs traffic pattern over a chosen transport, and prints per-node
// and fabric statistics — a quick way to watch the simulated hardware and
// runtime at work on arbitrary topologies.
//
// Examples:
//
//	nectar-sim -nodes 4 -msgs 50 -size 1024 -proto rmp
//	nectar-sim -nodes 6 -hubs 2 -proto datagram -size 256
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nectar"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/mailbox"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func main() {
	nodes := flag.Int("nodes", 4, "number of host/CAB pairs")
	hubs := flag.Int("hubs", 1, "number of HUBs (connected in a chain)")
	msgs := flag.Int("msgs", 20, "messages per source-destination pair")
	size := flag.Int("size", 1024, "message size in bytes")
	proto := flag.String("proto", "rmp", "transport: datagram | rmp")
	rxThread := flag.Bool("rxthread", false, "protocol input in a thread instead of at interrupt time")
	flag.Parse()

	cl := nectar.NewCluster(&nectar.Config{RxThreadMode: *rxThread})
	for h := 1; h < *hubs; h++ {
		idx := cl.AddHub()
		cl.ConnectHubs(idx-1, idx)
	}
	var ns []*nectar.Node
	var sinks []*mailbox.Mailbox
	for i := 0; i < *nodes; i++ {
		n := cl.AddNodeAt(i % *hubs)
		ns = append(ns, n)
		sink := n.Mailboxes.Create(fmt.Sprintf("sim.sink%d", i))
		sink.SetCapacity(1 << 20)
		sinks = append(sinks, sink)
	}

	expect := (*nodes - 1) * *msgs // messages each node will receive
	remaining := *nodes
	// Receivers: CAB threads draining each sink.
	for i, n := range ns {
		i, n := i, n
		n.CAB.Sched.Fork("drain", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			for k := 0; k < expect; k++ {
				m := sinks[i].BeginGet(ctx)
				sinks[i].EndGet(ctx, m)
			}
			remaining--
		})
	}
	// Senders: every node blasts every other node.
	for i, n := range ns {
		i, n := i, n
		n.CAB.Sched.Fork("blast", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			buf := make([]byte, *size)
			for j := range ns {
				if j == i {
					continue
				}
				addr := wire.MailboxAddr{Node: ns[j].ID, Box: sinks[j].ID()}
				for k := 0; k < *msgs; k++ {
					switch *proto {
					case "datagram":
						_ = n.Transports.Datagram.SendDirect(ctx, addr, 0, buf)
						t.Sleep(100 * sim.Microsecond) // pace unreliable traffic
					case "rmp":
						if st := n.Transports.RMP.SendBlocking(ctx, addr, 0, buf); st != 1 {
							log.Fatalf("rmp send failed: status %d", st)
						}
					default:
						fmt.Fprintf(os.Stderr, "unknown -proto %q\n", *proto)
						os.Exit(2)
					}
				}
			}
		})
	}

	start := cl.Now()
	for remaining > 0 {
		if err := cl.RunFor(10 * sim.Millisecond); err != nil {
			log.Fatal(err)
		}
		if sim.Duration(cl.Now()-start) > 300*sim.Second {
			log.Fatal("traffic did not complete (check -proto/-msgs)")
		}
	}
	elapsed := sim.Duration(cl.Now() - start)

	totalBytes := *nodes * (*nodes - 1) * *msgs * *size
	fmt.Printf("%d nodes on %d HUB(s), %s, %d x %dB per pair\n", *nodes, *hubs, *proto, *msgs, *size)
	fmt.Printf("virtual time: %v   aggregate goodput: %.1f Mbit/s\n",
		elapsed, float64(totalBytes)*8/elapsed.Seconds()/1e6)
	fmt.Printf("\n%-6s %10s %10s %10s %12s %12s\n", "node", "tx", "rx", "crcErr", "switches", "interrupts")
	for i, n := range ns {
		tx, rx, crcErr := n.CAB.Stats()
		fmt.Printf("cab%-3d %10d %10d %10d %12d %12d\n",
			i+1, tx, rx, crcErr, n.CAB.Sched.Switches(), n.CAB.Sched.Interrupts())
	}
	for i, h := range cl.Hubs {
		fmt.Printf("hub%-3d forwarded %d frames\n", i, h.Forwarded())
	}
}
