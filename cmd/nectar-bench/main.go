// Command nectar-bench regenerates the paper's evaluation: every table
// and figure of "Protocol Implementation on the Nectar Communication
// Processor" (SIGCOMM 1990), the micro-measurements quoted in the text,
// and the ablations the paper proposes.
//
// Usage:
//
//	nectar-bench [experiment ...]
//
// Experiments: table1, fig6, fig7, fig8, netdev, micro, ablate-ipmode,
// ablate-upcall, ablate-switching, ablate-rmpwindow, mailbox-impl,
// all (default).
package main

import (
	"fmt"
	"os"

	"nectar/internal/bench"
	"nectar/internal/model"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"all"}
	}
	cost := model.Default1990()
	exit := 0
	for _, a := range args {
		if err := run(a, cost); err != nil {
			fmt.Fprintf(os.Stderr, "nectar-bench %s: %v\n", a, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func run(name string, cost *model.CostModel) error {
	switch name {
	case "all":
		for _, n := range []string{"table1", "fig6", "fig7", "fig8", "netdev", "micro",
			"ablate-ipmode", "ablate-upcall", "ablate-switching", "ablate-rmpwindow", "ablate-appload", "mailbox-impl"} {
			if err := run(n, cost); err != nil {
				return err
			}
		}
		return nil
	case "table1":
		r, err := bench.Table1(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "fig6":
		r, err := bench.Fig6(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "fig7":
		curves, err := bench.Fig7(cost, nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatCurves("Figure 7: CAB-to-CAB throughput vs message size", curves))
		fmt.Println("paper anchors: RMP -> 90 Mbit/s at 8KB; doubling region <= 256B; TCP gap ~= checksum cost")
	case "fig8":
		curves, err := bench.Fig8(cost, nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatCurves("Figure 8: host-to-host throughput vs message size", curves))
		fmt.Println("paper anchors: VME-limited ~30 Mbit/s bus; TCP ~24, RMP ~28; flattens earlier than Fig 7")
	case "netdev":
		r, err := bench.Netdev(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "micro":
		r, err := bench.Micro(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablate-ipmode":
		r, err := bench.AblateIPMode(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablate-upcall":
		r, err := bench.AblateUpcall(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablate-switching":
		r, err := bench.AblateSwitching(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablate-rmpwindow":
		r, err := bench.AblateRMPWindow(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablate-appload":
		r, err := bench.AblateAppLoad(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "mailbox-impl":
		r, err := bench.AblateMailboxImpl(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
