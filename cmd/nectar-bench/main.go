// Command nectar-bench regenerates the paper's evaluation: every table
// and figure of "Protocol Implementation on the Nectar Communication
// Processor" (SIGCOMM 1990), the micro-measurements quoted in the text,
// and the ablations the paper proposes.
//
// Usage:
//
//	nectar-bench [-stats] [-parallel N] [-shards N] [-allow-oversubscribed] [-benchjson path] [-pdesjson path] [experiment ...]
//
// -stats appends a one-line metrics summary (from the observability
// registry snapshot) to each experiment that exports one.
//
// -parallel N runs independent sweep points (each its own simulated
// cluster on a private kernel) on N worker goroutines; the default is
// GOMAXPROCS. Virtual-time results — every number printed to stdout —
// are byte-identical to a sequential run; only wall clock changes.
// Wall-clock per experiment is reported on stderr so stdout stays
// diffable.
//
// -shards N additionally runs each experiment *cluster* sharded: nodes
// are partitioned round-robin over N simulation kernels coupled by the
// conservative lookahead scheduler, so a single big cluster also uses
// multiple cores. Results remain byte-identical to sequential execution
// (the default, N=1).
//
// Experiments: table1, fig6, fig7, fig8, netdev, micro, ablate-ipmode,
// ablate-upcall, ablate-switching, ablate-rmpwindow, mailbox-impl,
// kernel (event-queue benchmark, writes -benchjson),
// pdes (sharded-execution benchmark, writes -pdesjson),
// scale (datacenter-fabric sweep to 65,536 nodes, writes -scalejson;
// -scalemax N caps the largest fabric for smoke runs), all (default).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"nectar/internal/bench"
	"nectar/internal/model"
	"nectar/internal/obs"
)

var (
	statsFlag    = flag.Bool("stats", false, "print metrics-snapshot summaries with each experiment")
	parallelFlag = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for independent sweep points (0 = GOMAXPROCS)")
	shardsFlag   = flag.Int("shards", 1, "shard kernels per experiment cluster (1 = sequential; results identical either way)")
	benchJSON    = flag.String("benchjson", "BENCH_kernel.json", "output path for the kernel experiment's JSON report")
	pdesJSON     = flag.String("pdesjson", "BENCH_pdes.json", "output path for the pdes experiment's JSON report")
	scaleJSON    = flag.String("scalejson", "BENCH_scale.json", "output path for the scale experiment's JSON report")
	scaleMax     = flag.Int("scalemax", 0, "cap the scale experiment's largest fabric at this many nodes (0 = full sweep to 65,536)")
	profFlag     = flag.Bool("prof", false, "profile the pdes experiment's sharded run: BENCH_pdes.json gains a `profile` wall-clock breakdown")
	allowOversub = flag.Bool("allow-oversubscribed", false, "let the pdes experiment run with more shard workers than usable cores (the JSON is then marked oversubscribed and its speedup is not a scheduler verdict)")
	cpuProfile   = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file (samples carry shard/phase labels under -prof)")
	memProfile   = flag.String("memprofile", "", "write a runtime/pprof heap profile to this file at exit")
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	if *parallelFlag == 0 {
		*parallelFlag = runtime.GOMAXPROCS(0)
	}
	bench.SetParallelism(*parallelFlag)
	bench.SetExperimentShards(*shardsFlag)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nectar-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nectar-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	cost := model.Default1990()
	exit := 0
	for _, a := range args {
		start := time.Now()
		if err := run(a, cost); err != nil {
			fmt.Fprintf(os.Stderr, "nectar-bench %s: %v\n", a, err)
			exit = 1
		}
		fmt.Fprintf(os.Stderr, "# %s: %.2fs wall (parallel=%d shards=%d)\n",
			a, time.Since(start).Seconds(), bench.Parallelism(), bench.ExperimentShards())
	}
	// Profiles are flushed explicitly: os.Exit skips deferred calls.
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		if err := writeHeapProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "nectar-bench: -memprofile: %v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// writeHeapProfile snapshots live-heap allocations to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile reflects retained memory
	return pprof.WriteHeapProfile(f)
}

func run(name string, cost *model.CostModel) error {
	switch name {
	case "all":
		for _, n := range []string{"table1", "fig6", "fig7", "fig8", "netdev", "micro",
			"ablate-ipmode", "ablate-upcall", "ablate-switching", "ablate-rmpwindow", "ablate-appload", "mailbox-impl"} {
			if err := run(n, cost); err != nil {
				return err
			}
		}
		return nil
	case "table1":
		r, err := bench.Table1(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		printSnaps(r.Metrics)
	case "fig6":
		r, err := bench.Fig6(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		printSnaps(map[string]*obs.Snapshot{"fig6": r.Metrics})
	case "fig7":
		curves, snaps, err := bench.Fig7(cost, nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatCurves("Figure 7: CAB-to-CAB throughput vs message size", curves))
		fmt.Println("paper anchors: RMP -> 90 Mbit/s at 8KB; doubling region <= 256B; TCP gap ~= checksum cost")
		printSnaps(snaps)
	case "fig8":
		curves, snaps, err := bench.Fig8(cost, nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatCurves("Figure 8: host-to-host throughput vs message size", curves))
		fmt.Println("paper anchors: VME-limited ~30 Mbit/s bus; TCP ~24, RMP ~28; flattens earlier than Fig 7")
		printSnaps(snaps)
	case "netdev":
		r, err := bench.Netdev(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "micro":
		r, err := bench.Micro(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablate-ipmode":
		r, err := bench.AblateIPMode(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablate-upcall":
		r, err := bench.AblateUpcall(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablate-switching":
		r, err := bench.AblateSwitching(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablate-rmpwindow":
		r, err := bench.AblateRMPWindow(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablate-appload":
		r, err := bench.AblateAppLoad(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "mailbox-impl":
		r, err := bench.AblateMailboxImpl(cost)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "kernel":
		r := bench.KernelPerf()
		workers := bench.Parallelism()
		if workers < 2 {
			workers = runtime.NumCPU()
		}
		// A reduced sweep keeps the smoke run quick while still exercising
		// the worker pool; the full fig7 -parallel run is the user-facing
		// path.
		sweep, err := bench.Fig7WallClock(cost, []int{64, 256, 1024, 4096}, workers)
		if err != nil {
			return err
		}
		r.Sweep = sweep
		fmt.Println(r.Format())
		if *benchJSON != "" {
			if err := r.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "# wrote %s\n", *benchJSON)
		}
	case "scale":
		r, err := bench.Scale(cost, *scaleMax)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		if *scaleJSON != "" {
			if err := r.WriteJSON(*scaleJSON); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "# wrote %s\n", *scaleJSON)
		}
	case "pdes":
		shards := *shardsFlag
		if shards < 2 {
			shards = runtime.GOMAXPROCS(0)
			if shards > 4 {
				shards = 4
			}
		}
		// Clamp the way bench.Pdes will, then refuse to produce a
		// misleading speedup: with more shard workers than usable cores the
		// measurement reflects time-sliced goroutines, not parallel
		// hardware (the trap an early BENCH_pdes.json fell into).
		effective := shards
		if effective < 2 {
			effective = 2
		}
		if effective > 8 {
			effective = 8
		}
		usable := runtime.GOMAXPROCS(0)
		if n := runtime.NumCPU(); n < usable {
			usable = n
		}
		if effective > usable && !*allowOversub {
			return fmt.Errorf("pdes needs %d shard workers but only %d usable core(s) (GOMAXPROCS=%d, NumCPU=%d); rerun on a bigger machine or pass -allow-oversubscribed to record a time-sliced measurement",
				effective, usable, runtime.GOMAXPROCS(0), runtime.NumCPU())
		}
		r, err := bench.Pdes(cost, shards, *profFlag)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		if *pdesJSON != "" {
			if err := r.WriteJSON(*pdesJSON); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "# wrote %s\n", *pdesJSON)
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// printSnaps, under -stats, prints a one-line registry summary per run:
// the counters that explain each experiment's number.
func printSnaps(snaps map[string]*obs.Snapshot) {
	if !*statsFlag || len(snaps) == 0 {
		return
	}
	keys := make([]string, 0, len(snaps))
	for k := range snaps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("metrics:")
	for _, k := range keys {
		s := snaps[k]
		if s == nil {
			continue
		}
		fmt.Printf("  %-24s fiber=%dB vme=%dw ctxsw=%d mbox=%d/%d tcp.retrans=%d rmp.timeouts=%d\n",
			k,
			s.Sum(obs.LayerFiber, "bytes"),
			s.Sum(obs.LayerVME, "pio_words"),
			s.Sum(obs.LayerSched, "context_switches"),
			s.Sum(obs.LayerMailbox, "puts"), s.Sum(obs.LayerMailbox, "gets"),
			s.Sum(obs.LayerTCP, "retransmits"),
			s.Sum(obs.LayerRMP, "timeouts"))
	}
	fmt.Println()
}
