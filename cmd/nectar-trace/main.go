// Command nectar-trace runs a single exchange with the typed trace sink
// installed and prints three views of the virtual-time record: the event
// timeline, the span tree, and — when all stage markers are present — a
// Figure 6-style stage breakdown with the paper's host / host-CAB
// interface / CAB-to-CAB bucket attribution.
//
// Usage:
//
//	nectar-trace [-proto datagram|rmp|rrp] [-size N] [-q]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"nectar"
	"nectar/internal/model"
	"nectar/internal/obs"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func main() {
	proto := flag.String("proto", "datagram", "transport to trace: datagram | rmp | rrp")
	size := flag.Int("size", 4, "message size in bytes")
	quiet := flag.Bool("q", false, "suppress the raw event timeline")
	flag.Parse()
	switch *proto {
	case "datagram", "rmp", "rrp":
	default:
		log.Fatalf("unknown -proto %q (want datagram, rmp or rrp)", *proto)
	}

	cost := model.Default1990()
	cl := nectar.NewCluster(&nectar.Config{Cost: cost})
	a := cl.AddNode()
	b := cl.AddNode()

	// Typed trace sink, gated so the boot transient is not recorded.
	rec := &obs.Recorder{}
	tracing := false
	o := obs.Ensure(cl.K)
	o.SetSink(obs.SinkFunc(func(e obs.Event) {
		if tracing {
			rec.Event(e)
		}
	}))

	sink := b.Mailboxes.Create("trace.sink")
	service := b.Mailboxes.Create("trace.service")
	addrSink := wire.MailboxAddr{Node: b.ID, Box: sink.ID()}
	addrSvc := wire.MailboxAddr{Node: b.ID, Box: service.ID()}
	payload := make([]byte, *size)

	rxDone := false
	var end, rxBegin, readDone, rxEnd sim.Time
	if *proto == "rrp" {
		rxDone = true // the sender observes completion itself
		b.CAB.Sched.Fork("server", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			m := service.BeginGet(ctx)
			b.Transports.RRP.Reply(ctx, m, payload)
			service.EndGet(ctx, m)
		})
	} else {
		b.Host.Run("receiver", func(t *threads.Thread) {
			ctx := exec.OnHost(t, b.Host)
			m := sink.BeginGetPoll(ctx)
			rxBegin = t.Now()
			buf := make([]byte, m.Len())
			m.Read(ctx, 0, buf)
			t.Compute(cost.HostMessageRead)
			readDone = t.Now()
			sink.EndGet(ctx, m)
			rxEnd = t.Now()
			end = rxEnd
			rxDone = true
		})
	}

	done := false
	var start, createDone sim.Time
	a.Host.Run("sender", func(t *threads.Thread) {
		ctx := exec.OnHost(t, a.Host)
		t.Sleep(5 * sim.Millisecond) // boot transient
		tracing = true
		start = t.Now()
		t.Compute(cost.HostMessageCreate) // the paper's "host creating the message"
		createDone = t.Now()
		switch *proto {
		case "datagram":
			a.Transports.Datagram.Send(ctx, addrSink, 0, payload, nil)
		case "rmp":
			st := a.Syncs.Alloc(ctx)
			a.Transports.RMP.Send(ctx, addrSink, 0, payload, st)
			st.Read(ctx)
		case "rrp":
			st := a.Syncs.Alloc(ctx)
			replyBox := a.Mailboxes.Create("trace.reply")
			a.Transports.RRP.Call(ctx, addrSvc, payload, replyBox, st)
			st.Read(ctx)
			m := replyBox.BeginGetPoll(ctx)
			replyBox.EndGet(ctx, m)
		}
		if t.Now() > end {
			end = t.Now()
		}
		done = true
	})

	for !done || !rxDone {
		if err := cl.RunFor(10 * sim.Millisecond); err != nil {
			log.Fatal(err)
		}
		if cl.Now() > sim.Time(5*sim.Second) {
			log.Fatal("exchange did not complete")
		}
	}

	// Keep only events inside the exchange window.
	events := rec.Events[:0]
	for _, e := range rec.Events {
		if e.At <= end {
			events = append(events, e)
		}
	}

	fmt.Printf("trace: %s, %d bytes, node %d -> node %d\n", *proto, *size, a.ID, b.ID)
	fmt.Printf("end-to-end completion: %v (%d events)\n", sim.Duration(end-start), len(events))

	if !*quiet {
		fmt.Printf("\n%12s  %10s  event\n", "t (us)", "delta")
		prev := start
		for _, e := range events {
			fmt.Printf("%12.3f  %+9.3f  n%d %-8s %-7s %s%s\n",
				float64(e.At-start)/1e3, float64(e.At-prev)/1e3,
				e.Node, e.Layer, e.Kind, e.Name, eventDetail(e))
			prev = e.At
		}
	}

	printSpanTree(events, start)
	printStages(*proto, events, stageAnchors{
		start: start, createDone: createDone,
		rxBegin: rxBegin, readDone: readDone, rxEnd: rxEnd,
		nodeA: int(a.ID), nodeB: int(b.ID),
	})
}

func eventDetail(e obs.Event) string {
	var sb strings.Builder
	if e.Arg != "" {
		sb.WriteString(" " + e.Arg)
	}
	if e.Seq != 0 {
		fmt.Fprintf(&sb, " seq=%d", e.Seq)
	}
	if e.Bytes != 0 {
		fmt.Fprintf(&sb, " len=%d", e.Bytes)
	}
	return sb.String()
}

// printSpanTree reconstructs Begin/End pairs and prints them nested by
// causal parent.
func printSpanTree(events []obs.Event, start sim.Time) {
	type span struct {
		id, parent obs.SpanID
		begin, end sim.Time
		node       int
		layer      obs.Layer
		name       string
		bytes      int
		children   []obs.SpanID
	}
	spans := map[obs.SpanID]*span{}
	var roots []obs.SpanID
	for _, e := range events {
		switch e.Kind {
		case obs.Begin:
			spans[e.Span] = &span{id: e.Span, parent: e.Parent, begin: e.At, end: e.At,
				node: e.Node, layer: e.Layer, name: e.Name, bytes: e.Bytes}
		case obs.End:
			if s, ok := spans[e.Span]; ok {
				s.end = e.At
			}
		}
	}
	for _, s := range spans {
		if p, ok := spans[s.parent]; ok && s.parent != 0 {
			p.children = append(p.children, s.id)
		} else {
			roots = append(roots, s.id)
		}
	}
	if len(spans) == 0 {
		return
	}
	sortIDs := func(ids []obs.SpanID) {
		sort.Slice(ids, func(i, j int) bool {
			si, sj := spans[ids[i]], spans[ids[j]]
			if si.begin != sj.begin {
				return si.begin < sj.begin
			}
			return si.id < sj.id
		})
	}
	fmt.Printf("\nspans:\n")
	var walk func(id obs.SpanID, depth int)
	walk = func(id obs.SpanID, depth int) {
		s := spans[id]
		detail := ""
		if s.bytes != 0 {
			detail = fmt.Sprintf(" len=%d", s.bytes)
		}
		fmt.Printf("  %s%8.3fus +%8.3fus  n%d %s.%s%s\n",
			strings.Repeat("  ", depth), float64(s.begin-start)/1e3,
			float64(s.end-s.begin)/1e3, s.node, s.layer, s.name, detail)
		sortIDs(s.children)
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	sortIDs(roots)
	for _, r := range roots {
		walk(r, 0)
	}
}

// stageAnchors carries the workload-side timestamps the typed stream
// cannot see (pure host compute phases).
type stageAnchors struct {
	start, createDone, rxBegin, readDone, rxEnd sim.Time
	nodeA, nodeB                                int
}

// printStages reproduces the Figure 6 one-way breakdown from the typed
// event stream: each stage boundary is the first occurrence of a marker
// event, and stages are summed into the paper's three buckets.
func printStages(proto string, events []obs.Event, an stageAnchors) {
	first := func(node int, layer obs.Layer, name, arg string) (sim.Time, bool) {
		for _, e := range events {
			if e.Node == node && e.Layer == layer && e.Name == name &&
				(arg == "" || strings.HasPrefix(e.Arg, arg)) {
				return e.At, true
			}
		}
		return 0, false
	}
	post, ok1 := first(an.nodeA, obs.LayerHostIF, "post", "")
	isr, ok2 := first(an.nodeA, obs.LayerHostIF, "cab_isr", "")
	req, ok3 := first(an.nodeA, obs.LayerMailbox, "get", proto+".send")
	dltx, ok4 := first(an.nodeA, obs.LayerDatalink, "tx", "")
	arrive, ok5 := first(an.nodeB, obs.LayerCAB, "rx.arrive", "")
	dlrx, ok6 := first(an.nodeB, obs.LayerDatalink, "rx", "")
	deliver, ok7 := first(an.nodeB, obs.Layer(proto), "deliver", "")
	if proto == "rrp" {
		// The RRP server answers from the CAB; the one-way breakdown
		// below does not apply to the round trip.
		return
	}
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) || an.rxEnd == 0 {
		fmt.Printf("\n(stage breakdown unavailable: missing markers)\n")
		return
	}
	us := func(from, to sim.Time) float64 { return sim.Duration(to - from).Micros() }
	type stage struct {
		name   string
		us     float64
		bucket string
	}
	stages := []stage{
		{"host: create message", us(an.start, an.createDone), "host"},
		{"host: begin_put/write/end_put", us(an.createDone, post), "interface"},
		{"host->CAB: doorbell + CAB ISR", us(post, isr), "interface"},
		{"CAB1: wake " + proto + " thread", us(isr, req), "interface"},
		{"CAB1: transport + datalink out", us(req, dltx), "cab"},
		{"wire: fiber + HUB", us(dltx, arrive), "cab"},
		{"CAB2: start-of-packet + datalink", us(arrive, dlrx), "cab"},
		{"CAB2: DMA + transport deliver", us(dlrx, deliver), "cab"},
		{"CAB2->host: signal + poll + begin_get", us(deliver, an.rxBegin), "interface"},
		{"host: read message", us(an.rxBegin, an.readDone), "host"},
		{"host: end_get", us(an.readDone, an.rxEnd), "interface"},
	}
	total := us(an.start, an.rxEnd)
	fmt.Printf("\nfigure-6 stage breakdown (one-way, %s):\n", proto)
	buckets := map[string]float64{}
	for _, s := range stages {
		fmt.Printf("  %-40s %8.1f us  [%s]\n", s.name, s.us, s.bucket)
		buckets[s.bucket] += s.us
	}
	fmt.Printf("  %-40s %8.1f us\n", "total", total)
	fmt.Printf("\nbuckets: host %.0f%%  host-CAB interface %.0f%%  CAB-to-CAB %.0f%%\n",
		100*buckets["host"]/total, 100*buckets["interface"]/total, 100*buckets["cab"]/total)
}
