// Command nectar-trace runs a single exchange with the instrumentation
// tracer installed and prints the annotated virtual-time timeline — the
// raw material behind the paper's Figure 6 breakdown, for any of the
// Nectar transports.
//
// Usage:
//
//	nectar-trace [-proto datagram|rmp|rrp] [-size N]
package main

import (
	"flag"
	"fmt"
	"log"

	"nectar"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func main() {
	proto := flag.String("proto", "datagram", "transport to trace: datagram | rmp | rrp")
	size := flag.Int("size", 4, "message size in bytes")
	flag.Parse()

	cl := nectar.NewCluster(nil)
	a := cl.AddNode()
	b := cl.AddNode()

	type mark struct {
		at   sim.Time
		name string
	}
	var marks []mark
	tracing := false
	cl.K.SetTracer(func(name string, at sim.Time) {
		if tracing {
			marks = append(marks, mark{at, name})
		}
	})

	sink := b.Mailboxes.Create("trace.sink")
	service := b.Mailboxes.Create("trace.service")
	addrSink := wire.MailboxAddr{Node: b.ID, Box: sink.ID()}
	addrSvc := wire.MailboxAddr{Node: b.ID, Box: service.ID()}
	payload := make([]byte, *size)

	rxDone := false
	var end sim.Time
	if *proto == "rrp" {
		rxDone = true // the sender observes completion itself
		b.CAB.Sched.Fork("server", threads.SystemPriority, func(t *threads.Thread) {
			ctx := exec.OnCAB(t)
			m := service.BeginGet(ctx)
			b.Transports.RRP.Reply(ctx, m, payload)
			service.EndGet(ctx, m)
		})
	} else {
		b.Host.Run("receiver", func(t *threads.Thread) {
			ctx := exec.OnHost(t, b.Host)
			m := sink.BeginGetPoll(ctx)
			sink.EndGet(ctx, m)
			end = t.Now()
			rxDone = true
		})
	}

	done := false
	var start sim.Time
	a.Host.Run("sender", func(t *threads.Thread) {
		ctx := exec.OnHost(t, a.Host)
		t.Sleep(5 * sim.Millisecond) // boot transient
		tracing = true
		start = t.Now()
		switch *proto {
		case "datagram":
			a.Transports.Datagram.Send(ctx, addrSink, 0, payload, nil)
		case "rmp":
			st := a.Syncs.Alloc(ctx)
			a.Transports.RMP.Send(ctx, addrSink, 0, payload, st)
			st.Read(ctx)
		case "rrp":
			st := a.Syncs.Alloc(ctx)
			replyBox := a.Mailboxes.Create("trace.reply")
			a.Transports.RRP.Call(ctx, addrSvc, payload, replyBox, st)
			st.Read(ctx)
			m := replyBox.BeginGetPoll(ctx)
			replyBox.EndGet(ctx, m)
		default:
			log.Fatalf("unknown -proto %q", *proto)
		}
		if t.Now() > end {
			end = t.Now()
		}
		done = true
	})

	for !done || !rxDone {
		if err := cl.RunFor(10 * sim.Millisecond); err != nil {
			log.Fatal(err)
		}
		if cl.Now() > sim.Time(5*sim.Second) {
			log.Fatal("exchange did not complete")
		}
	}

	fmt.Printf("trace: %s, %d bytes, node %d -> node %d\n\n", *proto, *size, a.ID, b.ID)
	fmt.Printf("%12s  %10s  %s\n", "t (us)", "delta", "event")
	prev := start
	for _, m := range marks {
		if m.at > end {
			break
		}
		fmt.Printf("%12.3f  %+9.3f  %s\n",
			float64(m.at-start)/1e3, float64(m.at-prev)/1e3, m.name)
		prev = m.at
	}
	fmt.Printf("\nend-to-end completion: %v\n", sim.Duration(end-start))
}
