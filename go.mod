module nectar

go 1.22
