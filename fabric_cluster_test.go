package nectar

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"nectar/internal/fabric"
	"nectar/internal/obs"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// fabricOpts varies the execution shape of runFabricWorkload without
// touching the simulated workload.
type fabricOpts struct {
	shardOf func(nodeIdx int) int
	declare bool
}

// runFabricWorkload drives a leaf-spine fabric — 4 leaves x 2 spines, 2
// hosts per leaf — with three RMP flows that each cross two HUB tiers
// (leaf -> spine -> leaf), under deterministic fault injection on every
// uplink, and returns the canonicalized observability output. shards=1
// runs the identical workload sequentially.
func runFabricWorkload(t *testing.T, shards int, seed uint64, opts ...fabricOpts) shardedWorkloadResult {
	t.Helper()
	var opt fabricOpts
	if len(opts) > 0 {
		opt = opts[0]
	}
	// Leaves hold nodes {0,1} {2,3} {4,5} {6,7}; every flow spans leaves.
	flows := [][2]int{{0, 2}, {4, 6}, {1, 7}}
	endpoints := []int{0, 1, 2, 4, 6, 7}

	cfg := &Config{Topology: fabric.LeafSpine(4, 2, 2)}
	if shards > 1 {
		cfg.Shards = shards
		cfg.ShardOf = opt.shardOf
	}
	if opt.declare {
		cfg.Flows = flows
	}
	cl := NewCluster(cfg)

	// Materialize the flow endpoints in a fixed order: wire IDs and trace
	// names follow materialization order, so both runs must agree on it.
	nodes := make(map[int]*Node, len(endpoints))
	for _, i := range endpoints {
		nodes[i] = cl.Node(i)
	}

	kernels := cl.Kernels()
	recs := make([]*obs.Recorder, len(kernels))
	taps := make([]*obs.Capture, len(kernels))
	for i, k := range kernels {
		o := obs.Ensure(k)
		recs[i] = &obs.Recorder{}
		o.SetSink(recs[i])
		taps[i] = &obs.Capture{}
		o.SetCapture(taps[i])
	}

	for _, i := range endpoints {
		nodes[i].CAB.OutLink().SetFaultFn(func(seq uint64) (drop, corrupt bool) {
			return (seq+seed)%7 == 3, (seq+3*seed)%11 == 5
		})
	}

	const perFlow = 16
	done := make([]bool, len(flows))
	for fi, f := range flows {
		fi, src, dst := fi, nodes[f[0]], nodes[f[1]]
		sink := dst.Mailboxes.Create(fmt.Sprintf("flow%d.sink", fi))
		sink.SetCapacity(1 << 20)
		addr := wire.MailboxAddr{Node: dst.ID, Box: sink.ID()}
		dst.CAB.Sched.Fork("drain", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			for n := 0; n < perFlow; n++ {
				m := sink.BeginGet(ctx)
				sink.EndGet(ctx, m)
			}
			done[fi] = true
		})
		src.CAB.Sched.Fork("blast", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			payload := make([]byte, 256)
			for i := range payload {
				payload[i] = byte(uint64(i) * (seed + uint64(fi) + 1))
			}
			for s := 0; s < perFlow; s++ {
				payload[0] = byte(s)
				if st := src.Transports.RMP.SendBlocking(ctx, addr, 0, payload); st != 1 {
					panic(fmt.Sprintf("flow %d send %d failed: status %d", fi, s, st))
				}
			}
		})
	}

	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}
	for !allDone() {
		if err := cl.RunFor(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if cl.Now() > sim.Time(60*sim.Second) {
			t.Fatalf("fabric workload stalled (shards=%d seed=%d, done=%v)", shards, seed, done)
		}
	}

	// Every flow spans leaves, so the spine crossbars (hubs 4 and 5 of a
	// 4-leaf topology) must have forwarded; frames crossed >= 2 HUB tiers.
	if cl.Hubs[4].Forwarded()+cl.Hubs[5].Forwarded() == 0 {
		t.Fatalf("no spine forwards: flows did not cross HUB tiers (shards=%d)", shards)
	}

	streams := make([][]obs.Event, len(recs))
	for i, r := range recs {
		streams[i] = r.Events
	}
	return shardedWorkloadResult{
		trace:   obs.FormatEvents(obs.CanonicalTrace(streams...)),
		capture: obs.CanonicalCapture(taps...).Text(),
		metrics: cl.MetricsSnapshot().JSON(),
	}
}

// TestMultiHubSharded is the fabric tentpole's contract: frames crossing
// two HUB tiers (leaf -> spine -> leaf) under 2-, 4- and 8-shard
// partitions produce trace, capture and metric output byte-identical to
// the sequential run, with the communication graph declared (trunk
// ownership and reach planning active) across fault seeds.
func TestMultiHubSharded(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for _, seed := range []uint64{1, 12345} {
				seq := runFabricWorkload(t, 1, seed, fabricOpts{declare: true})
				shd := runFabricWorkload(t, shards, seed, fabricOpts{declare: true})
				if seq.trace == "" || seq.capture == "" {
					t.Fatal("sequential run produced no observability output")
				}
				if shd.trace != seq.trace {
					t.Errorf("seed=%d: trace differs from sequential; first divergence:\nseq: %s\nshd: %s",
						seed, firstDiffLine(seq.trace, shd.trace), firstDiffLine(shd.trace, seq.trace))
				}
				if shd.capture != seq.capture {
					t.Errorf("seed=%d: capture differs from sequential", seed)
				}
				if !bytes.Equal(shd.metrics, seq.metrics) {
					t.Errorf("seed=%d: metrics snapshot differs from sequential", seed)
				}
			}
		})
	}
}

// TestMultiHubShardedUndeclared drops the flow declaration: every trunk
// then registers as an unrestricted shard-0 gateway, the conservative
// fallback. Output must still be byte-identical to sequential.
func TestMultiHubShardedUndeclared(t *testing.T) {
	seq := runFabricWorkload(t, 1, 7)
	shd := runFabricWorkload(t, 2, 7)
	if shd.trace != seq.trace {
		t.Errorf("trace differs from sequential; first divergence:\nseq: %s\nshd: %s",
			firstDiffLine(seq.trace, shd.trace), firstDiffLine(shd.trace, seq.trace))
	}
	if shd.capture != seq.capture {
		t.Error("capture differs from sequential")
	}
	if !bytes.Equal(shd.metrics, seq.metrics) {
		t.Error("metrics snapshot differs from sequential")
	}
}

// TestMultiHubShardedAffinity partitions with the locality-aware builder:
// flow components cluster by edge crossbar, so most trunks end up with an
// empty cross-shard reach. Still byte-identical.
func TestMultiHubShardedAffinity(t *testing.T) {
	flows := [][2]int{{0, 2}, {4, 6}, {1, 7}}
	topo := fabric.LeafSpine(4, 2, 2)
	seq := runFabricWorkload(t, 1, 12345, fabricOpts{declare: true})
	shd := runFabricWorkload(t, 2, 12345, fabricOpts{
		declare: true,
		shardOf: ShardByFlowsOnFabric(topo, 2, flows),
	})
	if shd.trace != seq.trace {
		t.Errorf("trace differs from sequential; first divergence:\nseq: %s\nshd: %s",
			firstDiffLine(seq.trace, shd.trace), firstDiffLine(shd.trace, seq.trace))
	}
	if !bytes.Equal(shd.metrics, seq.metrics) {
		t.Error("metrics snapshot differs from sequential")
	}
}

// TestFabricFatTreeDelivery boots two nodes in different pods of a k=4
// fat-tree and runs an RMP exchange: the frame traverses five crossbars
// (edge, agg, core, agg, edge). Only the two endpoints materialize.
func TestFabricFatTreeDelivery(t *testing.T) {
	topo := fabric.FatTree(4)
	cl := NewCluster(&Config{Topology: topo})
	src, dst := cl.Node(0), cl.Node(15) // pod 0 and pod 3
	if got := cl.MaterializedNodes(); got != 2 {
		t.Fatalf("MaterializedNodes = %d, want 2", got)
	}
	if got := cl.NodeCount(); got != 16 {
		t.Fatalf("NodeCount = %d, want 16", got)
	}

	sink := dst.Mailboxes.Create("sink")
	addr := wire.MailboxAddr{Node: dst.ID, Box: sink.ID()}
	var got []byte
	dst.CAB.Sched.Fork("drain", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := sink.BeginGet(ctx)
		got = append(got, m.Data()...)
		sink.EndGet(ctx, m)
	})
	src.CAB.Sched.Fork("send", threads.SystemPriority, func(th *threads.Thread) {
		src.Transports.RMP.SendBlocking(exec.OnCAB(th), addr, 0, []byte("across the fabric"))
	})
	if err := cl.RunFor(sim.Second); err != nil {
		t.Fatal(err)
	}
	if string(got) != "across the fabric" {
		t.Fatalf("payload = %q", got)
	}
	// Data and acks cross all three tiers; every tier must have forwarded.
	tiers := [][2]int{{0, 3}, {8, 11}, {16, 19}} // edge, agg, core hub ranges of FatTree(4)
	for _, r := range tiers {
		var fwd uint64
		for h := r[0]; h <= r[1]; h++ {
			fwd += cl.Hubs[h].Forwarded()
		}
		if fwd == 0 {
			t.Errorf("no forwards in hub tier %d..%d", r[0], r[1])
		}
	}
}

// TestFabricCompactNodes checks that attachment points not touched by
// Node(i) stay compact: no stack, no CAB, no route entries — and that the
// shared route table holds exactly the routes the materialized pairs need.
func TestFabricCompactNodes(t *testing.T) {
	cl := NewCluster(&Config{
		Topology: fabric.LeafSpine(8, 2, 16), // 128 attachment points
		Flows:    [][2]int{{0, 100}},
	})
	a, b := cl.Node(0), cl.Node(100)
	if got := cl.MaterializedNodes(); got != 2 {
		t.Fatalf("MaterializedNodes = %d, want 2", got)
	}
	if got := cl.NodeCount(); got != 128 {
		t.Fatalf("NodeCount = %d, want 128", got)
	}
	if a.ID == b.ID {
		t.Fatal("materialized nodes share a wire ID")
	}
	// Self-loopback + both directions of the declared pair.
	if entries, bytes := cl.RouteTableStats(); entries != 4 || bytes == 0 {
		t.Errorf("route table has %d entries (%d bytes), want 4 distinct routes", entries, bytes)
	}
	// Materializing an undeclared node must panic only when it talks, not
	// when it boots.
	_ = cl.Node(5)
	if got := cl.MaterializedNodes(); got != 3 {
		t.Fatalf("MaterializedNodes = %d, want 3", got)
	}
}

// TestFabricHandWiringUnavailable pins the API contract: fabric clusters
// define their wiring from data, so the hand-wiring surface panics.
func TestFabricHandWiringUnavailable(t *testing.T) {
	cl := NewCluster(&Config{Topology: fabric.LeafSpine(2, 1, 2)})
	for name, fn := range map[string]func(){
		"AddHub":      func() { cl.AddHub() },
		"ConnectHubs": func() { cl.ConnectHubs(0, 1) },
		"AddNode":     func() { cl.AddNode() },
	} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("%s did not panic on a fabric cluster", name)
				} else if !strings.Contains(fmt.Sprint(r), "Topology") && !strings.Contains(fmt.Sprint(r), "Node(i)") {
					t.Errorf("%s: wrong panic: %v", name, r)
				}
			}()
			fn()
		}()
	}
}

// TestShardByFlowsOnFabric: components sharing a leaf crossbar cluster
// onto the same shard when balance allows, and the assignment co-locates
// every flow's endpoints.
func TestShardByFlowsOnFabric(t *testing.T) {
	topo := fabric.LeafSpine(4, 2, 4) // 16 nodes, 4 per leaf
	// Two flows per leaf-pair: leaf0<->leaf1 and leaf2<->leaf3 traffic.
	flows := [][2]int{{0, 4}, {1, 5}, {8, 12}, {9, 13}}
	f := ShardByFlowsOnFabric(topo, 2, flows)
	for _, fl := range flows {
		if f(fl[0]) != f(fl[1]) {
			t.Errorf("flow %v split across shards %d/%d", fl, f(fl[0]), f(fl[1]))
		}
	}
	// Locality: the two leaf0<->leaf1 components share edge crossbars, so
	// they land on the same shard (and likewise the leaf2<->leaf3 pair).
	if f(0) != f(1) {
		t.Errorf("leaf0 components split: shard(%d)=%d shard(%d)=%d", 0, f(0), 1, f(1))
	}
	if f(8) != f(9) {
		t.Errorf("leaf2 components split: shard(%d)=%d shard(%d)=%d", 8, f(8), 9, f(9))
	}
	if f(0) == f(8) {
		t.Error("both leaf pairs on one shard: no parallelism")
	}
	for i := 0; i < 16; i++ {
		if s := f(i); s < 0 || s >= 2 {
			t.Fatalf("shard(%d) = %d out of range", i, s)
		}
	}
}
