// Benchmarks regenerating the paper's evaluation, one per table/figure
// plus the quoted micro-measurements and ablations. Each benchmark runs
// the full virtual-time experiment per iteration and reports the measured
// quantity as a custom metric next to the paper's anchor, so
// `go test -bench=. -benchmem` reproduces the entire §6 evaluation.
package nectar_test

import (
	"strings"
	"testing"

	"nectar/internal/bench"
	"nectar/internal/model"
)

// metricName makes a protocol/curve label safe for ReportMetric units
// (benchmark metric units must not contain whitespace).
func metricName(label, suffix string) string {
	label = strings.NewReplacer(" ", "", "(", "", ")", "", "/", "").Replace(label)
	return label + suffix
}

// BenchmarkTable1_RoundTripLatency regenerates Table 1 (round-trip
// latency for the datagram, RMP, request-response and UDP protocols,
// host-host and CAB-CAB). Paper anchors: datagram 325/179 µs; RPC <500 µs.
func BenchmarkTable1_RoundTripLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1(model.Default1990())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.HostHostUS, metricName(row.Proto, "_hh_us"))
			b.ReportMetric(row.CABCABUS, metricName(row.Proto, "_cc_us"))
		}
	}
}

// BenchmarkFig6_OneWayDatagram regenerates Figure 6 (one-way host-to-host
// datagram latency breakdown). Paper anchors: 163 µs total, ~20 % host /
// ~40 % interface / ~40 % CAB-to-CAB.
func BenchmarkFig6_OneWayDatagram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig6(model.Default1990())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TotalUS, "oneway_us")
		b.ReportMetric(r.HostPct, "host_pct")
		b.ReportMetric(r.InterfacePct, "interface_pct")
		b.ReportMetric(r.CABPct, "cabcab_pct")
	}
}

// BenchmarkFig7_CABToCABThroughput regenerates Figure 7 at the 8 KB
// point for all three curves. Paper anchors: RMP ~90 Mbit/s; TCP w/o
// checksum almost as fast as RMP; TCP/IP below both.
func BenchmarkFig7_CABToCABThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, _, err := bench.Fig7(model.Default1990(), []int{8192})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range curves {
			b.ReportMetric(c.Points[0].Mbps, metricName(c.Name, "_8k_mbps"))
		}
	}
}

// BenchmarkFig7_SmallMessages checks Figure 7's doubling region: per the
// paper, "for small packets (up to 256 bytes), the per-packet overhead
// dominates ... and the throughput doubles when the packet size doubles".
func BenchmarkFig7_SmallMessages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, _, err := bench.Fig7(model.Default1990(), []int{64, 128, 256})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range curves {
			if c.Name != "RMP" {
				continue
			}
			b.ReportMetric(c.Points[1].Mbps/c.Points[0].Mbps, "rmp_128v64_ratio")
			b.ReportMetric(c.Points[2].Mbps/c.Points[1].Mbps, "rmp_256v128_ratio")
		}
	}
}

// BenchmarkFig8_HostToHostThroughput regenerates Figure 8 at the 8 KB
// point. Paper anchors: VME-limited ~30 Mbit/s; TCP ~24-28, RMP ~28.
func BenchmarkFig8_HostToHostThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, _, err := bench.Fig8(model.Default1990(), []int{8192})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range curves {
			b.ReportMetric(c.Points[0].Mbps, metricName(c.Name, "_8k_mbps"))
		}
	}
}

// BenchmarkNetdevVsEthernet regenerates the §6.3 network-device
// comparison. Paper anchors: 6.4 Mbit/s (Nectar as plain device) vs
// 7.2 Mbit/s (on-board Ethernet).
func BenchmarkNetdevVsEthernet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Netdev(model.Default1990())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NectarNetdevMbps, "netdev_mbps")
		b.ReportMetric(r.EthernetMbps, "ethernet_mbps")
	}
}

// BenchmarkHubSetup regenerates the §2.1 micro-measurement: 700 ns to set
// up a connection and transfer the first byte through one HUB.
func BenchmarkHubSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Micro(model.Default1990())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.HubFirstByteNS, "hub_first_byte_ns")
	}
}

// BenchmarkContextSwitch regenerates the §3.1 micro-measurement: a thread
// context switch is "20 µsec ... typical".
func BenchmarkContextSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Micro(model.Default1990())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ContextSwitchUS, "ctxswitch_us")
	}
}

// BenchmarkAblation_InterruptVsThread runs the §3.1 input-processing
// ablation the paper proposes (interrupt-time vs high-priority thread).
func BenchmarkAblation_InterruptVsThread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblateIPMode(model.Default1990())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.InterruptRTTUS, "interrupt_rtt_us")
		b.ReportMetric(r.ThreadRTTUS, "thread_rtt_us")
	}
}

// BenchmarkAblation_UpcallVsThread runs the §3.3 reader-upcall ablation.
func BenchmarkAblation_UpcallVsThread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblateUpcall(model.Default1990())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ThreadUS, "thread_us_per_op")
		b.ReportMetric(r.UpcallUS, "upcall_us_per_op")
	}
}

// BenchmarkAblation_MailboxImpl runs the §3.3 shared-memory vs RPC
// mailbox-implementation comparison (paper: shared memory ~2x faster).
func BenchmarkAblation_MailboxImpl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblateMailboxImpl(model.Default1990())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SharedUS, "shared_us")
		b.ReportMetric(r.RPCUS, "rpc_us")
	}
}

// BenchmarkAblation_CircuitSwitching runs the §2.1 packet-vs-circuit
// switching comparison.
func BenchmarkAblation_CircuitSwitching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblateSwitching(model.Default1990())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PacketFirstByteNS, "packet_ns")
		b.ReportMetric(r.CircuitFirstByteNS, "circuit_ns")
	}
}

// BenchmarkAblation_RMPWindow runs this reproduction's windowed-RMP
// extension ablation: what does the paper's stop-and-wait design cost?
// (Finding: almost nothing — per-message CPU dominates the tiny RTT.)
func BenchmarkAblation_RMPWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblateRMPWindow(model.Default1990())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.StopAndWaitMbps, "window1_mbps")
		b.ReportMetric(r.Window4Mbps, "window4_mbps")
	}
}
