package nectar

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"nectar/internal/obs"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// shardedWorkloadResult is everything a run exports for byte-comparison:
// the canonical trace, the canonical wire capture, and the merged metrics
// snapshot JSON.
type shardedWorkloadResult struct {
	trace   string
	capture string
	metrics []byte
}

// shardedOpts varies the execution shape of runShardedWorkload without
// touching the simulated workload: none of these may change the output.
type shardedOpts struct {
	// shardOf overrides the round-robin node-to-shard assignment.
	shardOf func(nodeIdx int) int
	// chunk is the RunFor granularity (default 10ms). The coupling must
	// produce identical output whatever horizon the driver advances by.
	chunk sim.Duration
	// declare passes the workload's flow list as Config.Flows, enabling
	// reach-based bound exclusion (and traffic enforcement).
	declare bool
}

// runShardedWorkload drives a 4-node cluster — two cross-shard RMP flows
// (0->1 and 2->3) under deterministic fault injection (drops + corruption
// on every uplink, pattern varied by seed) — with a trace recorder and
// wire capture per shard kernel, and returns the canonicalized output.
// shards=1 runs the identical workload sequentially on one kernel.
func runShardedWorkload(t *testing.T, shards int, seed uint64, opts ...shardedOpts) shardedWorkloadResult {
	t.Helper()
	var opt shardedOpts
	if len(opts) > 0 {
		opt = opts[0]
	}
	if opt.chunk == 0 {
		opt.chunk = 10 * sim.Millisecond
	}
	// Flows: 0 -> 1 and 2 -> 3. With round-robin shard assignment both
	// flows cross the shard boundary in both directions (data and acks).
	flows := [][2]int{{0, 1}, {2, 3}}

	var cfg *Config
	if shards > 1 {
		cfg = &Config{Shards: shards, ShardOf: opt.shardOf}
	}
	if opt.declare {
		if cfg == nil {
			cfg = &Config{}
		}
		cfg.Flows = flows
	}
	cl := NewCluster(cfg)

	const nNodes = 4
	const perFlow = 24
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		nodes[i] = cl.AddNode()
	}

	// Per-kernel observability: one recorder + capture per shard.
	kernels := cl.Kernels()
	recs := make([]*obs.Recorder, len(kernels))
	taps := make([]*obs.Capture, len(kernels))
	for i, k := range kernels {
		o := obs.Ensure(k)
		recs[i] = &obs.Recorder{}
		o.SetSink(recs[i])
		taps[i] = &obs.Capture{}
		o.SetCapture(taps[i])
	}

	// Deterministic stateless fault pattern per link: pure function of
	// the packet ordinal and the seed, so it needs no shared state and
	// is identical between sequential and sharded runs.
	for _, n := range nodes {
		n.CAB.OutLink().SetFaultFn(func(seq uint64) (drop, corrupt bool) {
			return (seq+seed)%7 == 3, (seq+3*seed)%11 == 5
		})
	}

	done := make([]bool, len(flows))
	for fi, f := range flows {
		fi, src, dst := fi, nodes[f[0]], nodes[f[1]]
		sink := dst.Mailboxes.Create(fmt.Sprintf("flow%d.sink", fi))
		sink.SetCapacity(1 << 20)
		addr := wire.MailboxAddr{Node: dst.ID, Box: sink.ID()}
		dst.CAB.Sched.Fork("drain", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			for n := 0; n < perFlow; n++ {
				m := sink.BeginGet(ctx)
				sink.EndGet(ctx, m)
			}
			done[fi] = true
		})
		src.CAB.Sched.Fork("blast", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			payload := make([]byte, 256)
			for i := range payload {
				payload[i] = byte(uint64(i) * (seed + uint64(fi) + 1))
			}
			for s := 0; s < perFlow; s++ {
				payload[0] = byte(s)
				if st := src.Transports.RMP.SendBlocking(ctx, addr, 0, payload); st != 1 {
					panic(fmt.Sprintf("flow %d send %d failed: status %d", fi, s, st))
				}
			}
		})
	}

	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}
	for !allDone() {
		if err := cl.RunFor(opt.chunk); err != nil {
			t.Fatal(err)
		}
		if cl.Now() > sim.Time(60*sim.Second) {
			t.Fatalf("workload stalled (shards=%d seed=%d, done=%v)", shards, seed, done)
		}
	}

	if shards > 1 {
		if got := cl.Shards(); got != shards {
			t.Fatalf("cluster has %d shards, want %d", got, shards)
		}
		if cl.Hubs[0].Forwarded() == 0 {
			t.Fatal("no HUB forwards: flows did not cross the switch")
		}
	}

	streams := make([][]obs.Event, len(recs))
	for i, r := range recs {
		streams[i] = r.Events
	}
	return shardedWorkloadResult{
		trace:   obs.FormatEvents(obs.CanonicalTrace(streams...)),
		capture: obs.CanonicalCapture(taps...).Text(),
		metrics: cl.MetricsSnapshot().JSON(),
	}
}

// TestShardedDeterminismUnderFaults is the tentpole's contract: a 4-node,
// 2-shard cluster under fault injection (drops + corruption) produces
// trace, capture, and metric output byte-identical to the sequential
// single-kernel run, across 3 seeds. Run under -race this also verifies
// the coupling's synchronization (shards execute on distinct goroutines).
func TestShardedDeterminismUnderFaults(t *testing.T) {
	for _, seed := range []uint64{1, 12345, 987654321} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			seq := runShardedWorkload(t, 1, seed)
			shd := runShardedWorkload(t, 2, seed)
			if seq.trace == "" || seq.capture == "" {
				t.Fatal("sequential run produced no observability output")
			}
			if shd.trace != seq.trace {
				t.Errorf("sharded trace differs from sequential; first divergence:\nseq: %s\nshd: %s",
					firstDiffLine(seq.trace, shd.trace), firstDiffLine(shd.trace, seq.trace))
			}
			if shd.capture != seq.capture {
				t.Errorf("sharded capture differs from sequential; first divergence:\nseq: %s\nshd: %s",
					firstDiffLine(seq.capture, shd.capture), firstDiffLine(shd.capture, seq.capture))
			}
			if !bytes.Equal(shd.metrics, seq.metrics) {
				t.Errorf("sharded metrics snapshot differs from sequential:\nseq: %s\nshd: %s",
					firstDiffLine(string(seq.metrics), string(shd.metrics)),
					firstDiffLine(string(shd.metrics), string(seq.metrics)))
			}
		})
	}
}

// TestShardedRepeatable runs the sharded workload twice and requires
// byte-identical output — parallel execution must not introduce run-to-run
// nondeterminism.
func TestShardedRepeatable(t *testing.T) {
	r1 := runShardedWorkload(t, 2, 7)
	r2 := runShardedWorkload(t, 2, 7)
	if r1.trace != r2.trace {
		t.Errorf("sharded traces differ between identical runs; first divergence:\nrun1: %s\nrun2: %s",
			firstDiffLine(r1.trace, r2.trace), firstDiffLine(r2.trace, r1.trace))
	}
	if r1.capture != r2.capture {
		t.Error("sharded captures differ between identical runs")
	}
	if !bytes.Equal(r1.metrics, r2.metrics) {
		t.Error("sharded metric snapshots differ between identical runs")
	}
}

// TestShardedFourWay shards the same 4-node workload one shard per node.
func TestShardedFourWay(t *testing.T) {
	seq := runShardedWorkload(t, 1, 42)
	shd := runShardedWorkload(t, 4, 42)
	if shd.trace != seq.trace {
		t.Errorf("4-shard trace differs from sequential; first divergence:\nseq: %s\nshd: %s",
			firstDiffLine(seq.trace, shd.trace), firstDiffLine(shd.trace, seq.trace))
	}
	if !bytes.Equal(shd.metrics, seq.metrics) {
		t.Error("4-shard metrics snapshot differs from sequential")
	}
}

// TestShardedArbitraryPartitions is the partitioning property test: for
// ANY node-to-shard assignment — pathological ones included — and any
// fault seed, the sharded run must stay byte-identical to the sequential
// one. Correctness may never depend on how the user partitions.
func TestShardedArbitraryPartitions(t *testing.T) {
	partitions := []struct {
		name    string
		shards  int
		shardOf func(nodeIdx int) int
	}{
		// Everything on shard 0 except the last node: one shard nearly
		// idle, maximally asymmetric load.
		{"lopsided", 2, func(i int) int {
			if i == 3 {
				return 1
			}
			return 0
		}},
		// Alternating: both flows (0->1, 2->3) split across the boundary,
		// like round-robin but with the opposite pairing.
		{"alternating", 2, func(i int) int { return i % 2 }},
		// Flow affinity: each flow's endpoints co-located, so no simulated
		// frame crosses the coupling at all.
		{"affinity", 2, ShardByFlows(4, 2, [][2]int{{0, 1}, {2, 3}})},
		// Three shards for four nodes: unequal shard populations.
		{"uneven3", 3, func(i int) int { return i % 3 }},
	}
	for _, p := range partitions {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 12345, 987654321} {
				seq := runShardedWorkload(t, 1, seed)
				shd := runShardedWorkload(t, p.shards, seed, shardedOpts{shardOf: p.shardOf})
				if shd.trace != seq.trace {
					t.Errorf("seed=%d: trace differs from sequential; first divergence:\nseq: %s\nshd: %s",
						seed, firstDiffLine(seq.trace, shd.trace), firstDiffLine(shd.trace, seq.trace))
				}
				if shd.capture != seq.capture {
					t.Errorf("seed=%d: capture differs from sequential", seed)
				}
				if !bytes.Equal(shd.metrics, seq.metrics) {
					t.Errorf("seed=%d: metrics snapshot differs from sequential", seed)
				}
			}
		})
	}
}

// TestShardedChunkInvariance varies the RunFor horizon: window coalescing
// clamps bounds to the driver's horizon, so the schedule of safe windows
// differs radically between chunk sizes, but at every chunk size the
// sharded run must match the sequential run driven with the same chunk.
// (Different chunks legitimately produce different output — the driver
// loop only observes completion at chunk boundaries, so a bigger chunk
// simulates further past the last delivery — which is why the comparison
// is seq-vs-shd per chunk, not across chunks.)
func TestShardedChunkInvariance(t *testing.T) {
	const seed = 12345
	for _, chunk := range []sim.Duration{sim.Millisecond, 3 * sim.Millisecond, 40 * sim.Millisecond} {
		seq := runShardedWorkload(t, 1, seed, shardedOpts{chunk: chunk})
		shd := runShardedWorkload(t, 2, seed, shardedOpts{chunk: chunk})
		if shd.trace != seq.trace {
			t.Errorf("chunk=%v: trace differs; first divergence:\nseq: %s\nshd: %s",
				chunk, firstDiffLine(seq.trace, shd.trace), firstDiffLine(shd.trace, seq.trace))
		}
		if shd.capture != seq.capture {
			t.Errorf("chunk=%v: capture differs", chunk)
		}
		if !bytes.Equal(shd.metrics, seq.metrics) {
			t.Errorf("chunk=%v: metrics snapshot differs", chunk)
		}
	}
}

// TestShardedDeclaredFlows is the coalescing property test: with the
// communication graph declared (Config.Flows) and flow-affinity
// partitioning, no gateway can ever emit toward the other shard, so every
// safe window spans the whole RunFor horizon. That maximally-coalesced
// schedule must still be byte-identical to the sequential run — with the
// SAME declaration, so the enforcement guard is active in both — across
// fault seeds and for a cross-shard partition too (where declaration
// tightens but does not eliminate the bounds).
func TestShardedDeclaredFlows(t *testing.T) {
	partitions := []struct {
		name    string
		shardOf func(nodeIdx int) int
	}{
		{"affinity", ShardByFlows(4, 2, [][2]int{{0, 1}, {2, 3}})},
		{"alternating", func(i int) int { return i % 2 }},
	}
	for _, p := range partitions {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 12345, 987654321} {
				seq := runShardedWorkload(t, 1, seed, shardedOpts{declare: true})
				shd := runShardedWorkload(t, 2, seed, shardedOpts{declare: true, shardOf: p.shardOf})
				if shd.trace != seq.trace {
					t.Errorf("seed=%d: trace differs from sequential; first divergence:\nseq: %s\nshd: %s",
						seed, firstDiffLine(seq.trace, shd.trace), firstDiffLine(shd.trace, seq.trace))
				}
				if shd.capture != seq.capture {
					t.Errorf("seed=%d: capture differs from sequential", seed)
				}
				if !bytes.Equal(shd.metrics, seq.metrics) {
					t.Errorf("seed=%d: metrics snapshot differs from sequential", seed)
				}
			}
		})
	}
	// Declaring must also not perturb output relative to NOT declaring:
	// the declaration only changes scheduling bounds, never the workload.
	plain := runShardedWorkload(t, 1, 12345)
	declared := runShardedWorkload(t, 1, 12345, shardedOpts{declare: true})
	if plain.trace != declared.trace {
		t.Error("declaring flows changed the sequential trace")
	}
}

// TestDeclaredFlowViolationPanics pins the enforcement contract: traffic
// between nodes not declared in Config.Flows fails deterministically —
// the uplink guard panics when the first frame is emitted, which the
// proc runtime converts into a kernel-fatal error returned by RunFor.
// Enforced in sequential mode too, so a bad declaration can never
// silently desync a sharded run.
func TestDeclaredFlowViolationPanics(t *testing.T) {
	cl := NewCluster(&Config{Flows: [][2]int{{0, 1}}})
	nodes := []*Node{cl.AddNode(), cl.AddNode(), cl.AddNode()}
	sink := nodes[2].Mailboxes.Create("undeclared.sink")
	addr := wire.MailboxAddr{Node: nodes[2].ID, Box: sink.ID()}
	nodes[0].CAB.Sched.Fork("violate", threads.SystemPriority, func(th *threads.Thread) {
		// 0 -> 2 is not declared: the send guard fires when the first
		// frame hits the uplink.
		nodes[0].Transports.RMP.SendBlocking(exec.OnCAB(th), addr, 0, []byte("x"))
	})
	err := cl.RunFor(sim.Second)
	if err == nil {
		t.Fatal("undeclared 0->2 traffic did not fail the run")
	}
	if !strings.Contains(err.Error(), "Config.Flows does not declare") {
		t.Errorf("wrong failure: %v", err)
	}
}
// flow-co-locating, load-balanced.
func TestShardByFlows(t *testing.T) {
	flows := [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	f := ShardByFlows(8, 2, flows)
	for _, fl := range flows {
		if f(fl[0]) != f(fl[1]) {
			t.Errorf("flow %v split across shards %d/%d", fl, f(fl[0]), f(fl[1]))
		}
	}
	counts := map[int]int{}
	for i := 0; i < 8; i++ {
		s := f(i)
		if s < 0 || s >= 2 {
			t.Fatalf("ShardOf(%d) = %d out of range", i, s)
		}
		counts[s]++
	}
	if counts[0] != 4 || counts[1] != 4 {
		t.Errorf("unbalanced assignment: %v", counts)
	}
	// Chained flows merge into one component.
	g := ShardByFlows(4, 2, [][2]int{{0, 1}, {1, 2}})
	if g(0) != g(1) || g(1) != g(2) {
		t.Errorf("chained flows not co-located: %d %d %d", g(0), g(1), g(2))
	}
	if g(3) == g(0) {
		t.Errorf("isolated node 3 not balanced onto the other shard")
	}
}

// TestShardedCircuitRefused checks the guard: circuits have zero switch
// delay (zero lookahead), so sharded HUBs refuse to open them.
func TestShardedCircuitRefused(t *testing.T) {
	cl := NewCluster(&Config{Shards: 2})
	cl.AddNode()
	cl.AddNode()
	if err := cl.Hubs[0].OpenCircuit(0, 1); err == nil {
		t.Fatal("OpenCircuit succeeded on a sharded HUB")
	}
}
