package nectar

import (
	"bytes"
	"fmt"
	"testing"

	"nectar/internal/obs"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

// shardedWorkloadResult is everything a run exports for byte-comparison:
// the canonical trace, the canonical wire capture, and the merged metrics
// snapshot JSON.
type shardedWorkloadResult struct {
	trace   string
	capture string
	metrics []byte
}

// runShardedWorkload drives a 4-node cluster — two cross-shard RMP flows
// (0->1 and 2->3) under deterministic fault injection (drops + corruption
// on every uplink, pattern varied by seed) — with a trace recorder and
// wire capture per shard kernel, and returns the canonicalized output.
// shards=1 runs the identical workload sequentially on one kernel.
func runShardedWorkload(t *testing.T, shards int, seed uint64) shardedWorkloadResult {
	t.Helper()
	var cfg *Config
	if shards > 1 {
		cfg = &Config{Shards: shards}
	}
	cl := NewCluster(cfg)

	const nNodes = 4
	const perFlow = 24
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		nodes[i] = cl.AddNode()
	}

	// Per-kernel observability: one recorder + capture per shard.
	kernels := cl.Kernels()
	recs := make([]*obs.Recorder, len(kernels))
	taps := make([]*obs.Capture, len(kernels))
	for i, k := range kernels {
		o := obs.Ensure(k)
		recs[i] = &obs.Recorder{}
		o.SetSink(recs[i])
		taps[i] = &obs.Capture{}
		o.SetCapture(taps[i])
	}

	// Deterministic stateless fault pattern per link: pure function of
	// the packet ordinal and the seed, so it needs no shared state and
	// is identical between sequential and sharded runs.
	for _, n := range nodes {
		n.CAB.OutLink().SetFaultFn(func(seq uint64) (drop, corrupt bool) {
			return (seq+seed)%7 == 3, (seq+3*seed)%11 == 5
		})
	}

	// Flows: 0 -> 1 and 2 -> 3. With round-robin shard assignment both
	// flows cross the shard boundary in both directions (data and acks).
	flows := [][2]int{{0, 1}, {2, 3}}
	done := make([]bool, len(flows))
	for fi, f := range flows {
		fi, src, dst := fi, nodes[f[0]], nodes[f[1]]
		sink := dst.Mailboxes.Create(fmt.Sprintf("flow%d.sink", fi))
		sink.SetCapacity(1 << 20)
		addr := wire.MailboxAddr{Node: dst.ID, Box: sink.ID()}
		dst.CAB.Sched.Fork("drain", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			for n := 0; n < perFlow; n++ {
				m := sink.BeginGet(ctx)
				sink.EndGet(ctx, m)
			}
			done[fi] = true
		})
		src.CAB.Sched.Fork("blast", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			payload := make([]byte, 256)
			for i := range payload {
				payload[i] = byte(uint64(i) * (seed + uint64(fi) + 1))
			}
			for s := 0; s < perFlow; s++ {
				payload[0] = byte(s)
				if st := src.Transports.RMP.SendBlocking(ctx, addr, 0, payload); st != 1 {
					panic(fmt.Sprintf("flow %d send %d failed: status %d", fi, s, st))
				}
			}
		})
	}

	allDone := func() bool {
		for _, d := range done {
			if !d {
				return false
			}
		}
		return true
	}
	for !allDone() {
		if err := cl.RunFor(10 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if cl.Now() > sim.Time(60*sim.Second) {
			t.Fatalf("workload stalled (shards=%d seed=%d, done=%v)", shards, seed, done)
		}
	}

	if shards > 1 {
		if got := cl.Shards(); got != shards {
			t.Fatalf("cluster has %d shards, want %d", got, shards)
		}
		if cl.Hubs[0].Forwarded() == 0 {
			t.Fatal("no HUB forwards: flows did not cross the switch")
		}
	}

	streams := make([][]obs.Event, len(recs))
	for i, r := range recs {
		streams[i] = r.Events
	}
	return shardedWorkloadResult{
		trace:   obs.FormatEvents(obs.CanonicalTrace(streams...)),
		capture: obs.CanonicalCapture(taps...).Text(),
		metrics: cl.MetricsSnapshot().JSON(),
	}
}

// TestShardedDeterminismUnderFaults is the tentpole's contract: a 4-node,
// 2-shard cluster under fault injection (drops + corruption) produces
// trace, capture, and metric output byte-identical to the sequential
// single-kernel run, across 3 seeds. Run under -race this also verifies
// the coupling's synchronization (shards execute on distinct goroutines).
func TestShardedDeterminismUnderFaults(t *testing.T) {
	for _, seed := range []uint64{1, 12345, 987654321} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			seq := runShardedWorkload(t, 1, seed)
			shd := runShardedWorkload(t, 2, seed)
			if seq.trace == "" || seq.capture == "" {
				t.Fatal("sequential run produced no observability output")
			}
			if shd.trace != seq.trace {
				t.Errorf("sharded trace differs from sequential; first divergence:\nseq: %s\nshd: %s",
					firstDiffLine(seq.trace, shd.trace), firstDiffLine(shd.trace, seq.trace))
			}
			if shd.capture != seq.capture {
				t.Errorf("sharded capture differs from sequential; first divergence:\nseq: %s\nshd: %s",
					firstDiffLine(seq.capture, shd.capture), firstDiffLine(shd.capture, seq.capture))
			}
			if !bytes.Equal(shd.metrics, seq.metrics) {
				t.Errorf("sharded metrics snapshot differs from sequential:\nseq: %s\nshd: %s",
					firstDiffLine(string(seq.metrics), string(shd.metrics)),
					firstDiffLine(string(shd.metrics), string(seq.metrics)))
			}
		})
	}
}

// TestShardedRepeatable runs the sharded workload twice and requires
// byte-identical output — parallel execution must not introduce run-to-run
// nondeterminism.
func TestShardedRepeatable(t *testing.T) {
	r1 := runShardedWorkload(t, 2, 7)
	r2 := runShardedWorkload(t, 2, 7)
	if r1.trace != r2.trace {
		t.Errorf("sharded traces differ between identical runs; first divergence:\nrun1: %s\nrun2: %s",
			firstDiffLine(r1.trace, r2.trace), firstDiffLine(r2.trace, r1.trace))
	}
	if r1.capture != r2.capture {
		t.Error("sharded captures differ between identical runs")
	}
	if !bytes.Equal(r1.metrics, r2.metrics) {
		t.Error("sharded metric snapshots differ between identical runs")
	}
}

// TestShardedFourWay shards the same 4-node workload one shard per node.
func TestShardedFourWay(t *testing.T) {
	seq := runShardedWorkload(t, 1, 42)
	shd := runShardedWorkload(t, 4, 42)
	if shd.trace != seq.trace {
		t.Errorf("4-shard trace differs from sequential; first divergence:\nseq: %s\nshd: %s",
			firstDiffLine(seq.trace, shd.trace), firstDiffLine(shd.trace, seq.trace))
	}
	if !bytes.Equal(shd.metrics, seq.metrics) {
		t.Error("4-shard metrics snapshot differs from sequential")
	}
}

// TestShardedCircuitRefused checks the guard: circuits have zero switch
// delay (zero lookahead), so sharded HUBs refuse to open them.
func TestShardedCircuitRefused(t *testing.T) {
	cl := NewCluster(&Config{Shards: 2})
	cl.AddNode()
	cl.AddNode()
	if err := cl.Hubs[0].OpenCircuit(0, 1); err == nil {
		t.Fatal("OpenCircuit succeeded on a sharded HUB")
	}
}
