package nectar

import (
	"fmt"

	"nectar/internal/fabric"
	"nectar/internal/hw/fiber"
	"nectar/internal/hw/hub"
	"nectar/internal/sim"
)

// This file realizes Config.Topology: the whole HUB fabric — crossbars and
// trunk fibers — is built up front from data, while nodes stay *compact*
// (a few bytes of arena state per attachment point) until Node(i)
// materializes a full host/CAB pair on first use.
//
// Sharded fabrics additionally assign every directed trunk an owning
// shard: the trunk's link and the input port it feeds run on the owner's
// kernel, and trunks whose forwards can enter another shard register as
// gateways with the coupling, bounding cross-shard output per destination
// exactly like node uplinks do. Ownership follows the declared flows
// (majority of traversing traffic, by source shard), so a flow-affinity
// partition leaves most trunks with an empty cross-shard reach — they stop
// constraining safe windows entirely.

// buildFabric creates hubs, trunks and the compact node arena from the
// validated topology. Called once from NewCluster.
func (cl *Cluster) buildFabric(topo *fabric.Topology) {
	if err := topo.Validate(); err != nil {
		panic("nectar: " + err.Error())
	}
	cl.topo = topo
	n := topo.NodeCount()
	if cl.flowPeers != nil && len(cl.flowPeers) > n {
		sim.Panicf("nectar: Config.Flows references node %d; the topology has %d attachment points",
			len(cl.flowPeers)-1, n)
	}
	for i, ports := range topo.HubPorts {
		h := hub.New(cl.K, cl.Cost, fmt.Sprintf("hub%d", i), ports)
		if cl.coupling != nil {
			h.SetSharded()
		}
		cl.Hubs = append(cl.Hubs, h)
		cl.nextPort = append(cl.nextPort, 0)
	}

	// The compact node arena: shard, materialized pointer and uplink slot
	// per attachment point. Everything else a node needs before it first
	// carries traffic lives in the topology's own arrays (hub, port).
	cl.mat = make([]*Node, n)
	cl.uplinks = make([]*fiber.Link, n)
	cl.nodeShard = make([]int32, n)
	if cl.coupling != nil {
		for i := range cl.nodeShard {
			cl.nodeShard[i] = int32(cl.shardOf(i))
		}
	}

	var reach [][]bool
	if cl.coupling != nil {
		cl.trunkOwner, reach = cl.planTrunks()
	}
	cl.trunks = make([]*fiber.Link, len(topo.Trunks))
	for ti, tr := range topo.Trunks {
		k := cl.K
		var dom *sim.Domain
		if cl.coupling != nil {
			dom = cl.domains[cl.trunkOwner[ti]]
			k = dom.Kernel()
		}
		var in fiber.Endpoint
		if dom != nil {
			in = cl.Hubs[tr.ToHub].InPortOn(tr.ToPort, k, dom)
		} else {
			in = cl.Hubs[tr.ToHub].InPort(tr.ToPort)
		}
		l := fiber.NewLink(k, cl.Cost, fmt.Sprintf("hub%d.%d->hub%d", tr.FromHub, tr.FromPort, tr.ToHub), in)
		cl.Hubs[tr.FromHub].ConnectOut(tr.FromPort, l)
		cl.trunks[ti] = l
		if dom == nil {
			continue
		}
		cl.Hubs[tr.FromHub].SetOutDomain(tr.FromPort, dom)
		// Gateway role. With declared flows, only trunks whose forwards
		// can actually enter another shard register (reach non-nil) —
		// the rest provably never emit cross-shard, and skipping them
		// keeps the coupling's choose phase O(active gateways), not
		// O(trunks), on 262k-trunk fabrics. Without declared flows every
		// trunk must register conservatively with unrestricted reach.
		if cl.flowPeers == nil {
			l.SetGateway(sim.Duration(cl.Cost.HubSetup), crossFn(cl.Hubs[tr.ToHub], dom))
			dom.AddGateway(l)
		} else if rb := reach[ti]; rb != nil {
			l.SetGateway(sim.Duration(cl.Cost.HubSetup), crossFn(cl.Hubs[tr.ToHub], dom))
			l.SetReach(func(dstDom int) bool {
				return dstDom >= 0 && dstDom < len(rb) && rb[dstDom]
			})
			dom.AddGateway(l)
		}
	}
}

// planTrunks assigns every directed trunk an owning shard and computes its
// cross-shard reach. Ownership is by majority vote of the declared flows
// traversing the trunk (voting with the flow's source shard; ties to the
// lowest shard), so with a flow-affinity partition a trunk is owned by the
// shard whose traffic uses it. reach[ti] is the set of domains the next
// forward after trunk ti can enter over declared flows — nil when every
// next hop stays on the owner (the trunk then needs no gateway at all).
// With undeclared traffic reach is nil and every trunk defaults to shard 0
// with an unrestricted gateway.
func (cl *Cluster) planTrunks() (owner []int32, reach [][]bool) {
	nt := len(cl.topo.Trunks)
	owner = make([]int32, nt)
	if cl.flowPeers == nil {
		return owner, nil
	}
	shards := len(cl.domains)
	votes := make([]int32, nt*shards)
	cl.eachFlowDirection(func(src, dst int) {
		s := int(cl.nodeShard[src])
		cl.walkTrunks(src, dst, func(ti int) {
			votes[ti*shards+s]++
		})
	})
	for ti := 0; ti < nt; ti++ {
		best, bv := 0, int32(0)
		for s := 0; s < shards; s++ {
			if v := votes[ti*shards+s]; v > bv {
				best, bv = s, v
			}
		}
		owner[ti] = int32(best)
	}
	reach = make([][]bool, nt)
	cl.eachFlowDirection(func(src, dst int) {
		var seq []int
		cl.walkTrunks(src, dst, func(ti int) { seq = append(seq, ti) })
		for pos, ti := range seq {
			next := cl.nodeShard[dst]
			if pos+1 < len(seq) {
				next = owner[seq[pos+1]]
			}
			if next != owner[ti] {
				if reach[ti] == nil {
					reach[ti] = make([]bool, shards)
				}
				reach[ti][next] = true
			}
		}
	})
	return owner, reach
}

// eachFlowDirection visits every declared flow in both directions (frames
// flow both ways — acknowledgments at minimum), skipping self-loops, in
// Config.Flows order: deterministic, unlike ranging over the peer sets.
func (cl *Cluster) eachFlowDirection(visit func(src, dst int)) {
	for _, f := range cl.cfg.Flows {
		if f[0] == f[1] {
			continue
		}
		visit(f[0], f[1])
		visit(f[1], f[0])
	}
}

// walkTrunks visits the directed trunks on the fabric route from node src
// to node dst, in hop order (none when they share a crossbar).
func (cl *Cluster) walkTrunks(src, dst int, visit func(trunkIdx int)) {
	topo := cl.topo
	at := int(topo.NodeHub[src])
	path, ok := topo.HubPath(at, int(topo.NodeHub[dst]))
	if !ok {
		sim.Panicf("nectar: no fabric path between nodes %d and %d", src, dst)
	}
	for _, p := range path {
		ti, ok := topo.TrunkIndex(at, int(p))
		if !ok {
			sim.Panicf("nectar: fabric route byte %d at hub %d names no trunk", p, at)
		}
		visit(ti)
		at = topo.Trunks[ti].ToHub
	}
}

// firstHopReach computes the set of domains the first forward after node
// idx's crossbar can enter, over its declared peers: a same-HUB peer
// resolves to the peer's shard, a farther peer to the owner of the path's
// first trunk. Later hops are covered by trunk gateways. Used as the
// node's uplink gateway reach on sharded fabrics.
func (cl *Cluster) firstHopReach(idx int) []bool {
	reach := make([]bool, len(cl.domains))
	topo := cl.topo
	srcHub := int(topo.NodeHub[idx])
	if idx < len(cl.flowPeers) {
		for peer := range cl.flowPeers[idx] {
			if int(topo.NodeHub[peer]) == srcHub {
				reach[cl.nodeShard[peer]] = true
				continue
			}
			if path, ok := topo.HubPath(srcHub, int(topo.NodeHub[peer])); ok && len(path) > 0 {
				if ti, ok := topo.TrunkIndex(srcHub, int(path[0])); ok {
					reach[cl.trunkOwner[ti]] = true
				}
			}
		}
	}
	return reach
}

// Node returns the node at index i. On a fabric cluster it materializes
// the full host/CAB pair at attachment point i on first use — wire IDs,
// trace names and routes follow materialization order, so workloads that
// must compare byte-identically across runs materialize their nodes in
// the same order. Under sharded execution, materialize before the first
// Run/RunFor: gateways register with the coupling at boot. Hand-wired
// clusters simply index Nodes.
func (cl *Cluster) Node(i int) *Node {
	if cl.topo == nil {
		return cl.Nodes[i]
	}
	if i < 0 || i >= len(cl.mat) {
		sim.Panicf("nectar: node %d out of range; the topology has %d attachment points", i, len(cl.mat))
	}
	if n := cl.mat[i]; n != nil {
		return n
	}
	return cl.materialize(i)
}

// materialize boots the full node at attachment point i and installs the
// routes between it and every relevant peer that is already materialized.
// Routes depend only on attachment coordinates, so both directions can be
// installed as soon as the second endpoint exists; compact nodes never
// transmit (they have no stack), so they need no entries at all.
func (cl *Cluster) materialize(i int) *Node {
	topo := cl.topo
	n := cl.bootNode(i, int(topo.NodeHub[i]), int(topo.NodePort[i]))
	cl.mat[i] = n
	rt := cl.routes()
	if r, ok := rt.Route(n.hubIdx, n.hubIdx, n.port); ok {
		n.CAB.SetRoute(n.ID, r) // loopback via the crossbar
	}
	link := func(p *Node) {
		if r, ok := rt.Route(n.hubIdx, p.hubIdx, p.port); ok {
			n.CAB.SetRoute(p.ID, r)
		}
		if r, ok := rt.Route(p.hubIdx, n.hubIdx, n.port); ok {
			p.CAB.SetRoute(n.ID, r)
		}
	}
	if cl.flowPeers != nil {
		if i < len(cl.flowPeers) {
			for peer := range cl.flowPeers[i] {
				if p := cl.mat[peer]; p != nil && p != n {
					link(p)
				}
			}
		}
	} else {
		for _, p := range cl.Nodes {
			if p != n {
				link(p)
			}
		}
	}
	return n
}

// NodeCount returns the number of attachment points of a fabric cluster,
// or the number of added nodes of a hand-wired one.
func (cl *Cluster) NodeCount() int {
	if cl.topo != nil {
		return len(cl.mat)
	}
	return len(cl.Nodes)
}

// MaterializedNodes reports how many nodes have a booted protocol stack
// (equal to NodeCount on hand-wired clusters).
func (cl *Cluster) MaterializedNodes() int { return len(cl.Nodes) }

// Topology returns the fabric this cluster was built from (nil when
// hand-wired).
func (cl *Cluster) Topology() *fabric.Topology { return cl.topo }

// TrunkLink returns the fiber link realizing directed trunk ti of the
// fabric (tests use it for fault injection on inter-HUB paths).
func (cl *Cluster) TrunkLink(ti int) *fiber.Link { return cl.trunks[ti] }
