package nectar

import (
	"bytes"
	"testing"

	"nectar/internal/proto/icmp"
	"nectar/internal/proto/tcp"
	"nectar/internal/proto/wire"
	"nectar/internal/rt/exec"
	"nectar/internal/rt/threads"
	"nectar/internal/sim"
)

func TestUDPEndToEnd(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	sa, err := a.UDP.Bind(1111)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.UDP.Bind(2222)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var srcPort uint32
	a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		if err := sa.SendTo(ctx, wire.NodeIP(b.ID), 2222, []byte("udp-hello")); err != nil {
			cl.K.Fatalf("send: %v", err)
		}
	})
	b.CAB.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := sb.Recv(ctx)
		got = append([]byte(nil), m.Data()...)
		srcPort = m.Tag
		sb.Done(ctx, m)
	})
	if err := cl.RunFor(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if string(got) != "udp-hello" {
		t.Fatalf("got %q", got)
	}
	if srcPort != 1111 {
		t.Errorf("src port = %d", srcPort)
	}
}

func TestUDPHostToHostEcho(t *testing.T) {
	// The Table 1 UDP workload: host process pings, host process echoes.
	cl, a, b := twoNodes(t, nil)
	sa, _ := a.UDP.Bind(1000)
	sb, _ := b.UDP.Bind(2000)
	var rtt sim.Duration
	a.Host.Run("client", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.Host)
		start := th.Now()
		if err := sa.SendTo(ctx, wire.NodeIP(b.ID), 2000, []byte{42}); err != nil {
			cl.K.Fatalf("send: %v", err)
		}
		m := sa.RecvPoll(ctx)
		rtt = sim.Duration(th.Now() - start)
		sa.Done(ctx, m)
	})
	b.Host.Run("echo", func(th *threads.Thread) {
		ctx := exec.OnHost(th, b.Host)
		m := sb.RecvPoll(ctx)
		data := make([]byte, m.Len())
		m.Read(ctx, 0, data)
		sb.Done(ctx, m)
		if err := sb.SendTo(ctx, wire.NodeIP(a.ID), 1000, data); err != nil {
			cl.K.Fatalf("echo send: %v", err)
		}
	})
	if err := cl.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rtt == 0 {
		t.Fatal("echo never returned")
	}
	// Table 1 shows Nectar-specific datagram at 325us; UDP (over IP) is
	// somewhat slower. Accept a broad band around the paper's magnitude.
	if rtt < 300*sim.Microsecond || rtt > 900*sim.Microsecond {
		t.Errorf("UDP host-host RTT = %v, expected hundreds of microseconds", rtt)
	}
}

func TestIPFragmentationReassembly(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	// Force fragmentation with a small MTU on the sender; the receiver
	// reassembles regardless of its own MTU.
	a.IP.SetMTU(512)
	sa, _ := a.UDP.Bind(1111)
	sb, _ := b.UDP.Bind(2222)
	payload := bytes.Repeat([]byte{0xA5}, 3000)
	var got []byte
	a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		if err := sa.SendTo(ctx, wire.NodeIP(b.ID), 2222, payload); err != nil {
			cl.K.Fatalf("send: %v", err)
		}
	})
	b.CAB.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := sb.Recv(ctx)
		got = append([]byte(nil), m.Data()...)
		sb.Done(ctx, m)
	})
	if err := cl.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes, want %d (content match: %v)", len(got), len(payload), bytes.Equal(got, payload))
	}
	_, fragsIn, reassembled, _, _ := b.IP.Stats()
	if fragsIn < 6 || reassembled != 1 {
		t.Errorf("fragsIn=%d reassembled=%d", fragsIn, reassembled)
	}
}

func TestIPFragmentLossTimesOut(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	a.IP.SetMTU(512)
	sa, _ := a.UDP.Bind(1111)
	sb, _ := b.UDP.Bind(2222)
	aOut := findLinkFrom(t, cl, a)
	var got bool
	a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		aOut.DropNext(1) // lose the first fragment
		_ = sa.SendTo(ctx, wire.NodeIP(b.ID), 2222, bytes.Repeat([]byte{1}, 2000))
	})
	b.CAB.Sched.Fork("rx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		m := sb.Recv(ctx)
		got = true
		sb.Done(ctx, m)
	})
	if err := cl.RunFor(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("incomplete datagram was delivered")
	}
	// The reassembly buffers must have been reclaimed by the timeout.
	if used := b.CAB.Heap.Used(); used > 64<<10 {
		t.Errorf("heap used = %d after reassembly timeout; fragments leaked", used)
	}
}

func TestICMPPing(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	aICMP := icmp.NewLayer(a.IP)
	_ = icmp.NewLayer(b.IP)
	var rtt sim.Duration
	a.CAB.Sched.Fork("pinger", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		st := a.Syncs.Alloc(ctx)
		start := th.Now()
		if err := aICMP.Ping(ctx, wire.NodeIP(b.ID), 7, 1, []byte("pingdata"), st); err != nil {
			cl.K.Fatalf("ping: %v", err)
		}
		st.Read(ctx)
		rtt = sim.Duration(th.Now() - start)
	})
	if err := cl.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rtt == 0 {
		t.Fatal("no echo reply")
	}
	if rtt > sim.Millisecond {
		t.Errorf("ping rtt = %v, too slow", rtt)
	}
}

func TestTCPConnectSendClose(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	ln, err := b.TCP.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	var received []byte
	var eof bool
	b.CAB.Sched.Fork("server", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		c := ln.Accept(ctx)
		for {
			m := c.Recv(ctx)
			if m == nil {
				eof = true
				return
			}
			received = append(received, m.Data()...)
			c.RecvDone(ctx, m)
		}
	})
	a.CAB.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		c, err := a.TCP.Connect(ctx, wire.NodeIP(b.ID), 80)
		if err != nil {
			cl.K.Fatalf("connect: %v", err)
		}
		c.Send(ctx, []byte("hello "))
		c.Send(ctx, []byte("tcp world"))
		c.Close(ctx)
	})
	if err := cl.RunFor(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if string(received) != "hello tcp world" {
		t.Fatalf("received %q", received)
	}
	if !eof {
		t.Error("server never saw EOF")
	}
}

func TestTCPLargeTransfer(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	ln, _ := b.TCP.Listen(80)
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var received []byte
	b.CAB.Sched.Fork("server", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		c := ln.Accept(ctx)
		for {
			m := c.Recv(ctx)
			if m == nil {
				return
			}
			received = append(received, m.Data()...)
			c.RecvDone(ctx, m)
		}
	})
	a.CAB.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		c, err := a.TCP.Connect(ctx, wire.NodeIP(b.ID), 80)
		if err != nil {
			cl.K.Fatalf("connect: %v", err)
		}
		for off := 0; off < len(payload); off += 8192 {
			c.Send(ctx, payload[off:off+8192])
		}
		c.Close(ctx)
	})
	if err := cl.RunFor(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("received %d bytes, want %d; equal=%v", len(received), len(payload), bytes.Equal(received, payload))
	}
}

func TestTCPRetransmitOnLoss(t *testing.T) {
	cl, a, b := twoNodes(t, nil)
	ln, _ := b.TCP.Listen(80)
	aOut := findLinkFrom(t, cl, a)
	var received []byte
	b.CAB.Sched.Fork("server", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		c := ln.Accept(ctx)
		for {
			m := c.Recv(ctx)
			if m == nil {
				return
			}
			received = append(received, m.Data()...)
			c.RecvDone(ctx, m)
		}
	})
	a.CAB.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		c, err := a.TCP.Connect(ctx, wire.NodeIP(b.ID), 80)
		if err != nil {
			cl.K.Fatalf("connect: %v", err)
		}
		aOut.DropNext(1) // lose the first data segment
		c.Send(ctx, []byte("lost-then-recovered"))
		c.Close(ctx)
	})
	if err := cl.RunFor(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if string(received) != "lost-then-recovered" {
		t.Fatalf("received %q", received)
	}
	retrans := a.TCP.Stats().Retransmits
	if retrans == 0 {
		t.Error("no TCP retransmission recorded")
	}
}

func TestTCPHostToHost(t *testing.T) {
	// The Figure 8 workload shape: host sender, host receiver, data
	// crossing both VME buses.
	cl, a, b := twoNodes(t, nil)
	ln, _ := b.TCP.Listen(80)
	var connB *tcp.Conn
	var connA *tcp.Conn
	ready := cl.K.NewSignal("ready")
	b.CAB.Sched.Fork("accept", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		connB = ln.Accept(ctx)
		ready.Broadcast()
	})
	a.CAB.Sched.Fork("connect", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		var err error
		connA, err = a.TCP.Connect(ctx, wire.NodeIP(b.ID), 80)
		if err != nil {
			cl.K.Fatalf("connect: %v", err)
		}
	})
	if err := cl.RunFor(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if connA == nil || connB == nil {
		t.Fatal("handshake did not complete")
	}
	payload := bytes.Repeat([]byte("DATA"), 2048) // 8 KB
	var received []byte
	a.Host.Run("sender", func(th *threads.Thread) {
		ctx := exec.OnHost(th, a.Host)
		connA.Send(ctx, payload)
	})
	b.Host.Run("receiver", func(th *threads.Thread) {
		ctx := exec.OnHost(th, b.Host)
		for len(received) < len(payload) {
			m := connB.RecvPoll(ctx)
			if m == nil {
				break
			}
			buf := make([]byte, m.Len())
			m.Read(ctx, 0, buf)
			received = append(received, buf...)
			connB.RecvDone(ctx, m)
		}
	})
	if err := cl.RunFor(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("received %d/%d bytes", len(received), len(payload))
	}
}

func TestTCPNoChecksumAblation(t *testing.T) {
	// Figure 7's "TCP w/o checksum": with software checksums off the
	// transfer must still work (hardware CRC protects the frames) and be
	// measurably faster.
	elapsed := func(checksum bool) sim.Duration {
		cl, a, b := twoNodes(t, nil)
		a.TCP.SetChecksum(checksum)
		b.TCP.SetChecksum(checksum)
		ln, _ := b.TCP.Listen(80)
		done := cl.K.NewSignal("done")
		var took sim.Time
		b.CAB.Sched.Fork("server", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			c := ln.Accept(ctx)
			total := 0
			for total < 10*8192 {
				m := c.Recv(ctx)
				if m == nil {
					break
				}
				total += m.Len()
				c.RecvDone(ctx, m)
			}
			took = th.Now()
			done.Broadcast()
		})
		a.CAB.Sched.Fork("client", threads.SystemPriority, func(th *threads.Thread) {
			ctx := exec.OnCAB(th)
			c, err := a.TCP.Connect(ctx, wire.NodeIP(b.ID), 80)
			if err != nil {
				cl.K.Fatalf("connect: %v", err)
			}
			buf := make([]byte, 8192)
			for i := 0; i < 10; i++ {
				c.Send(ctx, buf)
			}
		})
		if err := cl.RunFor(5 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return sim.Duration(took)
	}
	with := elapsed(true)
	without := elapsed(false)
	if with == 0 || without == 0 {
		t.Fatal("transfer incomplete")
	}
	if without >= with {
		t.Errorf("checksum-off (%v) not faster than checksum-on (%v)", without, with)
	}
}

func TestICMPDestinationUnreachable(t *testing.T) {
	// A datagram for an unbound IP protocol number is answered with an
	// ICMP protocol-unreachable, which the sender's ICMP reports upward.
	cl, a, b := twoNodes(t, nil)
	aICMP := icmp.NewLayer(a.IP)
	_ = icmp.NewLayer(b.IP)
	var gotProto uint8
	var gotDst uint32
	notified := false
	aICMP.OnUnreachable(func(proto uint8, dst uint32) {
		gotProto, gotDst = proto, dst
		notified = true
	})
	a.CAB.Sched.Fork("tx", threads.SystemPriority, func(th *threads.Thread) {
		ctx := exec.OnCAB(th)
		err := a.IP.Output(ctx, wire.IPv4Header{Protocol: 99, Dst: wire.NodeIP(b.ID)},
			[]byte("nobody-listens-to-proto-99"))
		if err != nil {
			cl.K.Fatalf("output: %v", err)
		}
	})
	if err := cl.RunFor(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !notified {
		t.Fatal("no unreachable notification")
	}
	if gotProto != 99 {
		t.Errorf("quoted protocol = %d, want 99", gotProto)
	}
	if gotDst != wire.NodeIP(b.ID) {
		t.Errorf("quoted dst = %s", wire.FormatIP(gotDst))
	}
}
